// Package lookup implements the durable, scalable global lookup service
// the paper assumes "IANA or some other organization provides" (§6.2): it
// associates each address with the public key of its owner (plus the SNs
// serving it), records which edomains have members and senders for each
// group, validates signed join authorizations, and pushes watch events to
// edomain cores that registered senders.
//
// Concurrency model (see DESIGN.md "Resolution cache hierarchy"): every
// read — address resolution, group ownership, membership, sender sets,
// join validation — goes through an atomically swapped snapshot and never
// takes a lock. Writes serialize behind one mutex, publish a new snapshot,
// and notify watchers while still holding it so each watcher observes
// events in publish order. Address state is two-level: an immutable base
// map plus a bounded delta (a sync.Map mutated only by the serialized
// writers, read lock-free); when the delta reaches a threshold it is
// folded into a fresh base and the pair is swapped, so a write is O(delta)
// amortized rather than O(records) — the difference between microseconds
// and ~100ms per registration at 10^6 records.
package lookup

import (
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"interedge/internal/clock"
	"interedge/internal/cryptutil"
	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// GroupID names an anycast/multicast group or pub/sub topic.
type GroupID string

// EdomainID names an autonomous domain of edge control (§3.1).
type EdomainID string

// Errors returned by the service.
var (
	ErrUnknownAddress = errors.New("lookup: unknown address")
	ErrUnknownGroup   = errors.New("lookup: unknown group")
	ErrBadSignature   = errors.New("lookup: signature verification failed")
	ErrNotAuthorized  = errors.New("lookup: join not authorized")
)

// AddrRecord maps an address to its owner's public key and associated SNs
// ("the appropriate name resolution returns not just the service-specific
// address but also one or more SNs associated with the destination host",
// §3.2). Records returned by reads share their slices with the published
// snapshot; callers must treat them as immutable.
type AddrRecord struct {
	Addr  wire.Addr
	Owner ed25519.PublicKey
	SNs   []wire.Addr
}

// GroupEvent reports an edomain joining or leaving a group's member set.
// A Resync event carries no edomain: it tells the watcher its channel
// overflowed and it must refetch the full member list (MemberEdomains)
// instead of applying increments.
type GroupEvent struct {
	Group   GroupID
	Edomain EdomainID
	Joined  bool
	Resync  bool
}

// AddrEvent reports an address-record change to an address watcher. Rec
// is the newly published record (shared slices; treat as immutable);
// Revoked marks a record removal. A Resync event names no address: the
// watcher's channel overflowed and any cached resolution state must be
// flushed or refetched. At is the service clock at publish time, so
// consumers can measure watch fan-out lag.
type AddrEvent struct {
	Addr    wire.Addr
	Rec     AddrRecord
	Revoked bool
	Resync  bool
	At      time.Time
}

// --- Read snapshots ------------------------------------------------------

// addrDeltaMerge bounds the write delta: once this many writes have
// accumulated since the last fold, the next write rebuilds the base.
// sqrt(2N) would minimize per-write cost at a fixed table size N; 4096
// keeps folds rare at planet scale while the delta stays cheap to probe.
const addrDeltaMerge = 4096

// addrState is one published address snapshot: an immutable base map
// plus a delta holding writes since the last fold. The delta is a
// sync.Map so readers probe it lock-free; only the serialized writers
// store into it. A tombstone (Owner == nil) in the delta shadows a base
// entry that has been revoked.
type addrState struct {
	base  map[wire.Addr]AddrRecord
	delta *sync.Map // wire.Addr -> AddrRecord
}

func newAddrState(base map[wire.Addr]AddrRecord) *addrState {
	return &addrState{base: base, delta: &sync.Map{}}
}

func (st *addrState) get(a wire.Addr) (AddrRecord, bool) {
	if v, ok := st.delta.Load(a); ok {
		rec := v.(AddrRecord)
		if rec.Owner == nil { // tombstone
			return AddrRecord{}, false
		}
		return rec, true
	}
	rec, ok := st.base[a]
	return rec, ok
}

// groupView is one group's immutable read view. The sorted slices are
// shared with every reader that asked for them; they are rebuilt, never
// mutated, on writes.
type groupView struct {
	owner         ed25519.PublicKey
	open          bool
	members       map[EdomainID]struct{}
	senders       map[EdomainID]struct{}
	membersSorted []EdomainID
	sendersSorted []EdomainID
}

func sortedIDs(set map[EdomainID]struct{}) []EdomainID {
	out := make([]EdomainID, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// cloneGroupView deep-copies the mutable parts of a view so a write can
// modify the copy and republish.
func cloneGroupView(gv *groupView) *groupView {
	cp := &groupView{
		owner:   gv.owner,
		open:    gv.open,
		members: make(map[EdomainID]struct{}, len(gv.members)),
		senders: make(map[EdomainID]struct{}, len(gv.senders)),
	}
	for m := range gv.members {
		cp.members[m] = struct{}{}
	}
	for m := range gv.senders {
		cp.senders[m] = struct{}{}
	}
	return cp
}

// --- Watchers ------------------------------------------------------------

type groupWatcher struct {
	ch         chan GroupEvent
	overflowed bool // guarded by Service.mu
}

type addrWatcher struct {
	ch         chan AddrEvent
	overflowed bool // guarded by Service.mu
}

const defaultWatchBuffer = 64

// --- Service -------------------------------------------------------------

// Service is the global lookup service. It is an in-memory, concurrent
// object; cmd/interedge-lab exposes it to simulated deployments directly,
// standing in for the replicated directory a production deployment would
// run.
type Service struct {
	clk clock.Clock

	// Read snapshots; swapped atomically, never mutated in place
	// (except the addr delta, mutated only under mu, probed lock-free).
	addrs  atomic.Pointer[addrState]
	groups atomic.Pointer[map[GroupID]*groupView]

	mu       sync.Mutex // serializes all writes and watcher registry changes
	deltaLen int        // writes since last addr fold (under mu)

	gWatch map[GroupID]map[int]*groupWatcher
	aWatch map[int]*addrWatcher
	nextW  int

	recordCount  atomic.Int64
	groupCount   atomic.Int64
	gWatchCount  atomic.Int64
	aWatchCount  atomic.Int64
	resolves     *telemetry.StripedCounter
	resolveMiss  *telemetry.StripedCounter
	regOK        *telemetry.Counter
	regFail      *telemetry.Counter
	groupUpdates *telemetry.Counter
	watchDropped *telemetry.Counter
	watchResyncs *telemetry.Counter
	deltaMerges  *telemetry.Counter
	instruments  []telemetry.Instrument
}

// Option configures a Service at construction.
type Option func(*Service)

// WithClock injects the clock used to stamp watch events (fan-out lag
// measurement) — a clock.Manual in simulated deployments.
func WithClock(c clock.Clock) Option {
	return func(s *Service) { s.clk = c }
}

// New creates an empty lookup service.
func New(opts ...Option) *Service {
	s := &Service{
		clk:    clock.Real{},
		gWatch: make(map[GroupID]map[int]*groupWatcher),
		aWatch: make(map[int]*addrWatcher),

		resolves:     telemetry.NewStripedCounter("lookup_resolves_total", 64),
		resolveMiss:  telemetry.NewStripedCounter("lookup_resolve_misses_total", 64),
		regOK:        telemetry.NewCounter("lookup_registrations_total"),
		regFail:      telemetry.NewCounter("lookup_registration_failures_total"),
		groupUpdates: telemetry.NewCounter("lookup_group_updates_total"),
		watchDropped: telemetry.NewCounter("lookup_watch_dropped_total"),
		watchResyncs: telemetry.NewCounter("lookup_watch_resyncs_total"),
		deltaMerges:  telemetry.NewCounter("lookup_delta_merges_total"),
	}
	for _, o := range opts {
		o(s)
	}
	s.addrs.Store(newAddrState(make(map[wire.Addr]AddrRecord)))
	empty := make(map[GroupID]*groupView)
	s.groups.Store(&empty)
	s.instruments = []telemetry.Instrument{
		s.resolves, s.resolveMiss, s.regOK, s.regFail, s.groupUpdates,
		s.watchDropped, s.watchResyncs, s.deltaMerges,
		telemetry.NewGaugeFunc("lookup_records", s.recordCount.Load),
		telemetry.NewGaugeFunc("lookup_groups", s.groupCount.Load),
		telemetry.NewGaugeFunc("lookup_group_watchers", s.gWatchCount.Load),
		telemetry.NewGaugeFunc("lookup_addr_watchers", s.aWatchCount.Load),
	}
	return s
}

// RegisterTelemetry exposes the service's instruments through a registry
// (telemetry.Registrable). Instruments are shared, not copied, so the
// same service may serve several registries.
func (s *Service) RegisterTelemetry(r *telemetry.Registry) {
	r.MustRegister(s.instruments...)
}

// stripeOf picks a telemetry stripe for an address: the low byte of the
// 16-byte form, so resolves of different addresses spread across counter
// cells without hashing on the hot path.
func stripeOf(a wire.Addr) int {
	b := a.As16()
	return int(b[15])
}

// --- Signed statements -------------------------------------------------

func addrRegMsg(addr wire.Addr, sns []wire.Addr) []byte {
	msg := []byte("ie-lookup-addr|")
	a := addr.As16()
	msg = append(msg, a[:]...)
	for _, s := range sns {
		b := s.As16()
		msg = append(msg, b[:]...)
	}
	return msg
}

// SignAddrRecord produces the owner signature over an address record.
func SignAddrRecord(owner cryptutil.SigningKeypair, addr wire.Addr, sns []wire.Addr) []byte {
	return owner.Sign(addrRegMsg(addr, sns))
}

func addrRevokeMsg(addr wire.Addr) []byte {
	msg := []byte("ie-lookup-revoke|")
	a := addr.As16()
	return append(msg, a[:]...)
}

// SignAddrRevocation produces the owner signature over an address
// revocation.
func SignAddrRevocation(owner cryptutil.SigningKeypair, addr wire.Addr) []byte {
	return owner.Sign(addrRevokeMsg(addr))
}

func openMsg(group GroupID) []byte {
	return []byte("ie-lookup-open|" + string(group))
}

// SignOpenStatement produces the owner's signed statement that a group is
// open to all joiners ("the owner can post a signed statement in the
// lookup service, allowing all receivers to validate their join
// messages", §6.2).
func SignOpenStatement(owner cryptutil.SigningKeypair, group GroupID) []byte {
	return owner.Sign(openMsg(group))
}

func joinAuthMsg(group GroupID, member ed25519.PublicKey) []byte {
	msg := []byte("ie-lookup-join|" + string(group) + "|")
	return append(msg, member...)
}

// SignJoinAuthorization produces the owner's authorization for a specific
// member key to join a group.
func SignJoinAuthorization(owner cryptutil.SigningKeypair, group GroupID, member ed25519.PublicKey) []byte {
	return owner.Sign(joinAuthMsg(group, member))
}

// --- Address records ----------------------------------------------------

// RegisterAddress stores an address record after verifying the owner's
// signature over it. Watchers receive the new record.
func (s *Service) RegisterAddress(rec AddrRecord, sig []byte) error {
	if !cryptutil.Verify(rec.Owner, addrRegMsg(rec.Addr, rec.SNs), sig) {
		s.regFail.Inc()
		return ErrBadSignature
	}
	cp := rec
	cp.Owner = append(ed25519.PublicKey(nil), rec.Owner...)
	cp.SNs = append([]wire.Addr(nil), rec.SNs...)

	s.mu.Lock()
	st := s.addrs.Load()
	if existing, ok := st.get(cp.Addr); ok && !existing.Owner.Equal(cp.Owner) {
		s.mu.Unlock()
		s.regFail.Inc()
		return fmt.Errorf("lookup: address %s already owned by a different key", cp.Addr)
	} else if !ok {
		s.recordCount.Add(1)
	}
	st.delta.Store(cp.Addr, cp)
	s.deltaLen++
	if s.deltaLen >= addrDeltaMerge {
		s.foldAddrsLocked()
	}
	s.notifyAddrLocked(AddrEvent{Addr: cp.Addr, Rec: cp, At: s.clk.Now()})
	s.mu.Unlock()
	s.regOK.Inc()
	return nil
}

// UnregisterAddress revokes an address record. The revocation must be
// signed by the record's current owner. Watchers receive a Revoked
// event; downstream resolution caches drop the address on it.
func (s *Service) UnregisterAddress(addr wire.Addr, sig []byte) error {
	s.mu.Lock()
	st := s.addrs.Load()
	rec, ok := st.get(addr)
	if !ok {
		s.mu.Unlock()
		return ErrUnknownAddress
	}
	if !cryptutil.Verify(rec.Owner, addrRevokeMsg(addr), sig) {
		s.mu.Unlock()
		s.regFail.Inc()
		return ErrBadSignature
	}
	st.delta.Store(addr, AddrRecord{Addr: addr}) // tombstone
	s.recordCount.Add(-1)
	s.deltaLen++
	if s.deltaLen >= addrDeltaMerge {
		s.foldAddrsLocked()
	}
	s.notifyAddrLocked(AddrEvent{Addr: addr, Revoked: true, At: s.clk.Now()})
	s.mu.Unlock()
	return nil
}

// RestoreRecords bulk-loads address records without per-record signature
// verification, rebuilding the read snapshot once. This is the
// replication/restore path — a replica trusts records its primary
// already verified — and how benchmarks seed planet-scale tables. The
// service takes ownership of the records' slices. Watchers receive one
// Resync event.
func (s *Service) RestoreRecords(recs []AddrRecord) {
	s.mu.Lock()
	old := s.addrs.Load()
	base := make(map[wire.Addr]AddrRecord, len(old.base)+len(recs))
	for k, v := range old.base {
		base[k] = v
	}
	old.delta.Range(func(k, v any) bool {
		rec := v.(AddrRecord)
		if rec.Owner == nil {
			delete(base, k.(wire.Addr))
		} else {
			base[k.(wire.Addr)] = rec
		}
		return true
	})
	for _, rec := range recs {
		base[rec.Addr] = rec
	}
	s.addrs.Store(newAddrState(base))
	s.deltaLen = 0
	s.recordCount.Store(int64(len(base)))
	s.notifyAddrLocked(AddrEvent{Resync: true, At: s.clk.Now()})
	s.mu.Unlock()
}

// foldAddrsLocked rebuilds the base map from base+delta and publishes a
// fresh snapshot with an empty delta. Readers switch over atomically;
// one mid-fold keeps using the old pair, which is logically identical.
func (s *Service) foldAddrsLocked() {
	old := s.addrs.Load()
	base := make(map[wire.Addr]AddrRecord, len(old.base)+s.deltaLen)
	for k, v := range old.base {
		base[k] = v
	}
	old.delta.Range(func(k, v any) bool {
		rec := v.(AddrRecord)
		if rec.Owner == nil {
			delete(base, k.(wire.Addr))
		} else {
			base[k.(wire.Addr)] = rec
		}
		return true
	})
	s.addrs.Store(newAddrState(base))
	s.deltaLen = 0
	s.deltaMerges.Inc()
}

// ResolveAddress returns the record for an address. Lock-free and
// allocation-free: one snapshot load, a delta probe, and a base map
// read. The returned record shares its slices with the snapshot; treat
// it as immutable.
func (s *Service) ResolveAddress(addr wire.Addr) (AddrRecord, error) {
	rec, ok := s.addrs.Load().get(addr)
	if !ok {
		s.resolveMiss.Inc(stripeOf(addr))
		return AddrRecord{}, ErrUnknownAddress
	}
	s.resolves.Inc(stripeOf(addr))
	return rec, nil
}

// WatchAddresses registers a watcher for address-record changes. Every
// RegisterAddress/UnregisterAddress publishes an event; if the watcher
// falls behind and its channel overflows, events are dropped (counted)
// and the next deliverable event is a Resync telling the consumer to
// flush derived state. buffer <= 0 selects the default (64). cancel
// unregisters and closes the channel.
func (s *Service) WatchAddresses(buffer int) (<-chan AddrEvent, func()) {
	if buffer <= 0 {
		buffer = defaultWatchBuffer
	}
	w := &addrWatcher{ch: make(chan AddrEvent, buffer)}
	s.mu.Lock()
	id := s.nextW
	s.nextW++
	s.aWatch[id] = w
	s.aWatchCount.Add(1)
	s.mu.Unlock()
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if ww, ok := s.aWatch[id]; ok {
			delete(s.aWatch, id)
			s.aWatchCount.Add(-1)
			close(ww.ch)
		}
	}
	return w.ch, cancel
}

// notifyAddrLocked fans an event out to every address watcher, in
// publish order (the caller holds mu through publish+notify). A full
// channel marks the watcher overflowed; once overflowed, the watcher
// receives a Resync as its next deliverable event instead of a gap it
// cannot detect.
func (s *Service) notifyAddrLocked(ev AddrEvent) {
	for _, w := range s.aWatch {
		if w.overflowed && !ev.Resync {
			select {
			case w.ch <- AddrEvent{Resync: true, At: ev.At}:
				w.overflowed = false
				s.watchResyncs.Inc()
			default:
				s.watchDropped.Inc()
			}
			continue
		}
		select {
		case w.ch <- ev:
		default:
			w.overflowed = true
			s.watchDropped.Inc()
		}
	}
}

// --- Groups --------------------------------------------------------------

// publishGroupLocked republishes the group read map with one view
// replaced (or added).
func (s *Service) publishGroupLocked(group GroupID, gv *groupView) {
	old := *s.groups.Load()
	next := make(map[GroupID]*groupView, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[group] = gv
	s.groups.Store(&next)
}

func (s *Service) groupView(group GroupID) (*groupView, bool) {
	gv, ok := (*s.groups.Load())[group]
	return gv, ok
}

// CreateGroup registers a group with its owning key.
func (s *Service) CreateGroup(group GroupID, owner ed25519.PublicKey) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.groupView(group); ok {
		return fmt.Errorf("lookup: group %q already exists", group)
	}
	gv := &groupView{
		owner:   append(ed25519.PublicKey(nil), owner...),
		members: make(map[EdomainID]struct{}),
		senders: make(map[EdomainID]struct{}),
	}
	s.publishGroupLocked(group, gv)
	s.gWatch[group] = make(map[int]*groupWatcher)
	s.groupCount.Add(1)
	return nil
}

// GroupOwner returns a group's owning key. Lock-free.
func (s *Service) GroupOwner(group GroupID) (ed25519.PublicKey, error) {
	gv, ok := s.groupView(group)
	if !ok {
		return nil, ErrUnknownGroup
	}
	return gv.owner, nil
}

// PostOpenStatement marks a group open-to-all after verifying the owner's
// signature.
func (s *Service) PostOpenStatement(group GroupID, sig []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	gv, ok := s.groupView(group)
	if !ok {
		return ErrUnknownGroup
	}
	if !cryptutil.Verify(gv.owner, openMsg(group), sig) {
		return ErrBadSignature
	}
	cp := cloneGroupView(gv)
	cp.open = true
	cp.membersSorted = gv.membersSorted
	cp.sendersSorted = gv.sendersSorted
	s.publishGroupLocked(group, cp)
	s.groupUpdates.Inc()
	return nil
}

// ValidateJoin checks a member's join credentials: open groups admit
// everyone; closed groups require a join authorization signed by the
// owner over the member's key. Lock-free.
func (s *Service) ValidateJoin(group GroupID, member ed25519.PublicKey, auth []byte) error {
	gv, ok := s.groupView(group)
	if !ok {
		return ErrUnknownGroup
	}
	if gv.open {
		return nil
	}
	if !cryptutil.Verify(gv.owner, joinAuthMsg(group, member), auth) {
		return ErrNotAuthorized
	}
	return nil
}

// JoinGroupEdomain records that an edomain now has at least one member of
// the group, notifying watchers.
func (s *Service) JoinGroupEdomain(group GroupID, ed EdomainID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	gv, ok := s.groupView(group)
	if !ok {
		return ErrUnknownGroup
	}
	if _, already := gv.members[ed]; already {
		return nil
	}
	cp := cloneGroupView(gv)
	cp.members[ed] = struct{}{}
	cp.membersSorted = sortedIDs(cp.members)
	cp.sendersSorted = gv.sendersSorted
	s.publishGroupLocked(group, cp)
	s.groupUpdates.Inc()
	s.notifyGroupLocked(group, GroupEvent{Group: group, Edomain: ed, Joined: true})
	return nil
}

// LeaveGroupEdomain records that an edomain no longer has members of the
// group, notifying watchers.
func (s *Service) LeaveGroupEdomain(group GroupID, ed EdomainID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	gv, ok := s.groupView(group)
	if !ok {
		return ErrUnknownGroup
	}
	if _, present := gv.members[ed]; !present {
		return nil
	}
	cp := cloneGroupView(gv)
	delete(cp.members, ed)
	cp.membersSorted = sortedIDs(cp.members)
	cp.sendersSorted = gv.sendersSorted
	s.publishGroupLocked(group, cp)
	s.groupUpdates.Inc()
	s.notifyGroupLocked(group, GroupEvent{Group: group, Edomain: ed, Joined: false})
	return nil
}

// RegisterSenderEdomain records that an edomain has a sender for the group
// and returns the current member edomains plus a watch for changes ("the
// core ... reads from the lookup service the list of edomains with members
// (and puts a watch on that list so the lookup service will send
// updates)", §6.2). A watcher that overflows its channel receives a
// Resync event and must refetch MemberEdomains.
func (s *Service) RegisterSenderEdomain(group GroupID, ed EdomainID) ([]EdomainID, <-chan GroupEvent, func(), error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gv, ok := s.groupView(group)
	if !ok {
		return nil, nil, nil, ErrUnknownGroup
	}
	cp := cloneGroupView(gv)
	cp.senders[ed] = struct{}{}
	cp.membersSorted = gv.membersSorted
	cp.sendersSorted = sortedIDs(cp.senders)
	s.publishGroupLocked(group, cp)

	members := append([]EdomainID(nil), cp.membersSorted...)

	id := s.nextW
	s.nextW++
	w := &groupWatcher{ch: make(chan GroupEvent, defaultWatchBuffer)}
	s.gWatch[group][id] = w
	s.gWatchCount.Add(1)
	cancel := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		if ww, ok := s.gWatch[group][id]; ok {
			delete(s.gWatch[group], id)
			s.gWatchCount.Add(-1)
			close(ww.ch)
		}
	}
	return members, w.ch, cancel, nil
}

// UnregisterSenderEdomain removes an edomain from the group's sender set.
func (s *Service) UnregisterSenderEdomain(group GroupID, ed EdomainID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	gv, ok := s.groupView(group)
	if !ok {
		return
	}
	if _, present := gv.senders[ed]; !present {
		return
	}
	cp := cloneGroupView(gv)
	delete(cp.senders, ed)
	cp.membersSorted = gv.membersSorted
	cp.sendersSorted = sortedIDs(cp.senders)
	s.publishGroupLocked(group, cp)
}

// MemberEdomains returns the edomains with members in a group, sorted.
// Lock-free.
func (s *Service) MemberEdomains(group GroupID) ([]EdomainID, error) {
	gv, ok := s.groupView(group)
	if !ok {
		return nil, ErrUnknownGroup
	}
	return append([]EdomainID(nil), gv.membersSorted...), nil
}

// SenderEdomains returns the edomains with registered senders for a
// group, sorted. Lock-free.
func (s *Service) SenderEdomains(group GroupID) ([]EdomainID, error) {
	gv, ok := s.groupView(group)
	if !ok {
		return nil, ErrUnknownGroup
	}
	return append([]EdomainID(nil), gv.sendersSorted...), nil
}

// notifyGroupLocked fans an event out to the group's watchers in publish
// order (caller holds mu through publish+notify); overflow handling
// mirrors notifyAddrLocked.
func (s *Service) notifyGroupLocked(group GroupID, ev GroupEvent) {
	for _, w := range s.gWatch[group] {
		if w.overflowed && !ev.Resync {
			select {
			case w.ch <- GroupEvent{Group: group, Resync: true}:
				w.overflowed = false
				s.watchResyncs.Inc()
			default:
				s.watchDropped.Inc()
			}
			continue
		}
		select {
		case w.ch <- ev:
		default:
			w.overflowed = true
			s.watchDropped.Inc()
		}
	}
}
