package lookup

import (
	"testing"
	"time"

	"interedge/internal/wire"
)

func awaitAddrEvent(t *testing.T, ch <-chan AddrEvent) AddrEvent {
	t.Helper()
	select {
	case ev := <-ch:
		return ev
	case <-time.After(2 * time.Second):
		t.Fatal("no address event")
		panic("unreachable")
	}
}

func TestWatchAddressesDeliversUpdatesAndRevocations(t *testing.T) {
	svc := New()
	owner := signer(t)
	ch, cancel := svc.WatchAddresses(8)
	defer cancel()

	addr := wire.MustAddr("fd00::10")
	sns := []wire.Addr{wire.MustAddr("fc00::1")}
	rec := AddrRecord{Addr: addr, Owner: owner.Public, SNs: sns}
	if err := svc.RegisterAddress(rec, SignAddrRecord(owner, addr, sns)); err != nil {
		t.Fatal(err)
	}
	ev := awaitAddrEvent(t, ch)
	if ev.Addr != addr || ev.Revoked || ev.Resync {
		t.Fatalf("unexpected event %+v", ev)
	}
	if len(ev.Rec.SNs) != 1 || ev.Rec.SNs[0] != sns[0] {
		t.Fatalf("event record %+v lacks the registered SNs", ev.Rec)
	}

	if err := svc.UnregisterAddress(addr, SignAddrRevocation(owner, addr)); err != nil {
		t.Fatal(err)
	}
	ev = awaitAddrEvent(t, ch)
	if ev.Addr != addr || !ev.Revoked {
		t.Fatalf("expected revocation event, got %+v", ev)
	}
	if _, err := svc.ResolveAddress(addr); err == nil {
		t.Fatal("revoked address still resolves")
	}
}

func TestUnregisterAddressRequiresOwnerSignature(t *testing.T) {
	svc := New()
	owner := signer(t)
	mallory := signer(t)
	addr := wire.MustAddr("fd00::11")
	sns := []wire.Addr{wire.MustAddr("fc00::1")}
	rec := AddrRecord{Addr: addr, Owner: owner.Public, SNs: sns}
	if err := svc.RegisterAddress(rec, SignAddrRecord(owner, addr, sns)); err != nil {
		t.Fatal(err)
	}
	if err := svc.UnregisterAddress(addr, SignAddrRevocation(mallory, addr)); err == nil {
		t.Fatal("revocation by a non-owner succeeded")
	}
	if _, err := svc.ResolveAddress(addr); err != nil {
		t.Fatalf("record vanished after rejected revocation: %v", err)
	}
	if err := svc.UnregisterAddress(addr, SignAddrRevocation(owner, addr)); err != nil {
		t.Fatal(err)
	}
}

// TestWatchOverflowForcesResync: a watcher that stops draining loses
// events — the service must not block the write path, must count the
// drops, and once the watcher drains again the next deliverable event
// must be a Resync ordering it to refetch everything.
func TestWatchOverflowForcesResync(t *testing.T) {
	svc := New()
	owner := signer(t)
	ch, cancel := svc.WatchAddresses(1)
	defer cancel()

	sns := []wire.Addr{wire.MustAddr("fc00::1")}
	reg := func(s string) {
		t.Helper()
		addr := wire.MustAddr(s)
		rec := AddrRecord{Addr: addr, Owner: owner.Public, SNs: sns}
		if err := svc.RegisterAddress(rec, SignAddrRecord(owner, addr, sns)); err != nil {
			t.Fatal(err)
		}
	}
	// First fills the buffer; the rest overflow without blocking.
	reg("fd00::20")
	reg("fd00::21")
	reg("fd00::22")
	if got := svc.watchDropped.Load(); got == 0 {
		t.Fatal("overflowed watcher recorded no dropped events")
	}

	// Drain the buffered event, then trigger one more write: with the
	// watcher marked overflowed, the deliverable event must be a resync.
	ev := awaitAddrEvent(t, ch)
	if ev.Resync {
		t.Fatalf("first buffered event already a resync: %+v", ev)
	}
	reg("fd00::23")
	ev = awaitAddrEvent(t, ch)
	if !ev.Resync {
		t.Fatalf("post-overflow event is not a resync: %+v", ev)
	}
	if got := svc.watchResyncs.Load(); got == 0 {
		t.Fatal("resync delivery not counted")
	}

	// After the resync the watcher is whole again: further events arrive
	// as themselves.
	reg("fd00::24")
	ev = awaitAddrEvent(t, ch)
	if ev.Resync || ev.Addr != wire.MustAddr("fd00::24") {
		t.Fatalf("post-resync event wrong: %+v", ev)
	}
}

func TestRestoreRecordsBulkLoadsAndEmitsResync(t *testing.T) {
	svc := New()
	owner := signer(t)
	ch, cancel := svc.WatchAddresses(4)
	defer cancel()

	recs := []AddrRecord{
		{Addr: wire.MustAddr("fd00::30"), Owner: owner.Public, SNs: []wire.Addr{wire.MustAddr("fc00::1")}},
		{Addr: wire.MustAddr("fd00::31"), Owner: owner.Public, SNs: []wire.Addr{wire.MustAddr("fc00::2")}},
	}
	svc.RestoreRecords(recs)
	for _, r := range recs {
		got, err := svc.ResolveAddress(r.Addr)
		if err != nil {
			t.Fatalf("restored %s does not resolve: %v", r.Addr, err)
		}
		if got.SNs[0] != r.SNs[0] {
			t.Fatalf("restored %s has SNs %v", r.Addr, got.SNs)
		}
	}
	ev := awaitAddrEvent(t, ch)
	if !ev.Resync {
		t.Fatalf("restore emitted %+v, want resync", ev)
	}
	// Restored records obey the same ownership rules as registered ones.
	mallory := signer(t)
	rec := AddrRecord{Addr: recs[0].Addr, Owner: mallory.Public, SNs: recs[0].SNs}
	if err := svc.RegisterAddress(rec, SignAddrRecord(mallory, rec.Addr, rec.SNs)); err == nil {
		t.Fatal("restored record hijacked by a different key")
	}
}

// TestDeltaFoldPreservesRecords pushes past the delta-merge threshold and
// checks every record (and tombstone) survives the fold into a fresh
// base snapshot.
func TestDeltaFoldPreservesRecords(t *testing.T) {
	svc := New()
	owner := signer(t)
	sns := []wire.Addr{wire.MustAddr("fc00::1")}
	addrs := make([]wire.Addr, 0, addrDeltaMerge+10)
	for i := 0; i < addrDeltaMerge+10; i++ {
		addrs = append(addrs, benchAddr(i))
	}
	for _, a := range addrs {
		rec := AddrRecord{Addr: a, Owner: owner.Public, SNs: sns}
		if err := svc.RegisterAddress(rec, SignAddrRecord(owner, a, sns)); err != nil {
			t.Fatal(err)
		}
	}
	if svc.deltaMerges.Load() == 0 {
		t.Fatalf("no delta fold after %d registrations", len(addrs))
	}
	if err := svc.UnregisterAddress(addrs[0], SignAddrRevocation(owner, addrs[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ResolveAddress(addrs[0]); err == nil {
		t.Fatal("tombstoned record resolves")
	}
	for _, a := range addrs[1:] {
		if _, err := svc.ResolveAddress(a); err != nil {
			t.Fatalf("record %s lost across fold: %v", a, err)
		}
	}
}
