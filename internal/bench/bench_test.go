package bench

import (
	"testing"
	"time"

	"interedge/internal/sn"
)

func smallCase(mode string, enclave bool) Table1Case {
	c := DefaultTable1Case(mode, enclave)
	c.Packets = 500
	return c
}

func TestTable1NoService(t *testing.T) {
	res, err := RunTable1(smallCase("no-service", false))
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputPPS <= 0 || res.MedianLatency <= 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestTable1NullServiceIPC(t *testing.T) {
	res, err := RunTable1(smallCase("null-service", false))
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputPPS <= 0 {
		t.Fatalf("result %+v", res)
	}
}

func TestTable1Enclaves(t *testing.T) {
	for _, mode := range []string{"no-service", "null-service"} {
		if _, err := RunTable1(smallCase(mode, true)); err != nil {
			t.Fatalf("%s enclave: %v", mode, err)
		}
	}
}

// The paper's central Table 1 shape: no-service throughput strictly
// exceeds null-service (IPC) throughput, and no-service latency is lower.
func TestTable1Shape(t *testing.T) {
	noSvc, err := RunTable1(smallCase("no-service", false))
	if err != nil {
		t.Fatal(err)
	}
	nullSvc, err := RunTable1(smallCase("null-service", false))
	if err != nil {
		t.Fatal(err)
	}
	if noSvc.ThroughputPPS <= nullSvc.ThroughputPPS {
		t.Fatalf("no-service %.0f pps not above null-service %.0f pps",
			noSvc.ThroughputPPS, nullSvc.ThroughputPPS)
	}
	if noSvc.MedianLatency >= nullSvc.MedianLatency {
		t.Fatalf("no-service latency %v not below null-service %v",
			noSvc.MedianLatency, nullSvc.MedianLatency)
	}
}

func TestTable1UnknownMode(t *testing.T) {
	if _, err := RunTable1(Table1Case{Mode: "bogus", Packets: 1, Outstanding: 1}); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestTable1ChanTransport(t *testing.T) {
	c := smallCase("null-service", false)
	c.Transport = sn.TransportChan
	if _, err := RunTable1(c); err != nil {
		t.Fatal(err)
	}
}

func TestDirectPeeringSmall(t *testing.T) {
	res, err := RunDirectPeering(PeeringConfig{
		Tunnels:           200,
		RotateEvery:       3 * time.Minute,
		SimulatedDuration: 6 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each tunnel rotates ~twice over 2 intervals.
	if res.Rotations < 300 || res.Rotations > 600 {
		t.Fatalf("rotations = %d, want ~400", res.Rotations)
	}
	if res.CPUFraction <= 0 || res.BandwidthBps <= 0 {
		t.Fatalf("result %+v", res)
	}
}
