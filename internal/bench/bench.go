// Package bench is the reproduction harness for the paper's evaluation
// (Appendix C): the Table 1 microbenchmarks (no-service and null-service
// throughput and latency, with and without enclaves) and the direct-
// peering tunnel-scale benchmark. Both the root-level testing.B benches
// and cmd/interedge-bench drive these functions, so `go test -bench` and
// the CLI report the same workloads.
package bench

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"interedge/internal/cryptutil"
	"interedge/internal/handshake"
	"interedge/internal/netsim"
	"interedge/internal/pipe"
	"interedge/internal/services/null"
	"interedge/internal/sn"
	"interedge/internal/sn/cache"
	"interedge/internal/tunnel"
	"interedge/internal/wire"
)

// Table1Case selects one row of Table 1.
type Table1Case struct {
	// Mode is "no-service" (pipe-terminus only, decision-cache hit) or
	// "null-service" (slow-path round trip through the null module).
	Mode string
	// Enclave runs the terminus (no-service) or the module
	// (null-service) inside a simulated enclave.
	Enclave bool
	// Transport selects the module transport for null-service (the paper
	// prototype used IPC).
	Transport sn.Transport
	// Packets is the number of measured packets.
	Packets int
	// Outstanding is the send window (the paper used 64).
	Outstanding int
	// PayloadSize is the packet payload in bytes.
	PayloadSize int
	// RxWorkers sets the SN's receive-pipeline width (0 = GOMAXPROCS).
	// Single-flow rows are unaffected by sharding — every packet from one
	// ingress hashes to the same worker — so workers=1 is the apples-to-
	// apples baseline for them.
	RxWorkers int
}

// DefaultTable1Case fills in the paper's parameters.
func DefaultTable1Case(mode string, enclave bool) Table1Case {
	return Table1Case{
		Mode:        mode,
		Enclave:     enclave,
		Transport:   sn.TransportIPC,
		Packets:     20000,
		Outstanding: 64,
		PayloadSize: 256,
	}
}

// Table1Result is one measured row.
type Table1Result struct {
	Case          Table1Case
	ThroughputPPS float64
	MedianLatency time.Duration
	P99Latency    time.Duration
	// Workers is the effective SN receive-pipeline width used for the run.
	Workers int
}

// RunTable1 measures one Table 1 row in two phases, mirroring the paper:
// a loaded phase with c.Outstanding packets in flight measures throughput,
// and an unloaded phase (one packet in flight) measures median latency —
// Table 1 reports "unloaded median latency".
func RunTable1(c Table1Case) (Table1Result, error) {
	loaded, err := runTable1Once(c)
	if err != nil {
		return Table1Result{}, err
	}
	unloaded := c
	unloaded.Outstanding = 1
	if unloaded.Packets > 2000 {
		unloaded.Packets = 2000
	}
	lat, err := runTable1Once(unloaded)
	if err != nil {
		return Table1Result{}, err
	}
	return Table1Result{
		Case:          c,
		ThroughputPPS: loaded.ThroughputPPS,
		MedianLatency: lat.MedianLatency,
		P99Latency:    lat.P99Latency,
		Workers:       loaded.Workers,
	}, nil
}

// runTable1Once runs a single phase: packets flow ingress-host → SN →
// egress-host with a bounded number outstanding; each packet carries its
// send timestamp so the egress can compute one-way pipeline latency.
func runTable1Once(c Table1Case) (Table1Result, error) {
	net := netsim.NewNetwork()

	// Service node.
	snTr, err := net.Attach(wire.MustAddr("fd00::5"))
	if err != nil {
		return Table1Result{}, err
	}
	snID, err := handshake.NewIdentity()
	if err != nil {
		return Table1Result{}, err
	}
	node, err := sn.New(sn.Config{
		Transport:       snTr,
		Identity:        snID,
		EnclaveTerminus: c.Mode == "no-service" && c.Enclave,
		RxWorkers:       c.RxWorkers,
	})
	if err != nil {
		return Table1Result{}, err
	}
	defer node.Close()

	// Egress endpoint: records arrival latencies and releases the window.
	latencies := make([]time.Duration, 0, c.Packets)
	done := make(chan struct{})
	window := make(chan struct{}, c.Outstanding)
	egressTr, err := net.Attach(wire.MustAddr("fd00::e"))
	if err != nil {
		return Table1Result{}, err
	}
	egressID, err := handshake.NewIdentity()
	if err != nil {
		return Table1Result{}, err
	}
	var received atomic.Int64
	egress, err := pipe.New(pipe.Config{
		Transport: egressTr,
		Identity:  egressID,
		// One worker: the measurement varies the SN's pipeline width, and
		// the handler appends to latencies without a lock.
		RxWorkers: 1,
		Handler: func(_ pipe.Sender, src wire.Addr, hdr wire.ILPHeader, _ []byte, payload []byte) {
			if len(payload) >= 8 {
				sent := time.Unix(0, int64(binary.BigEndian.Uint64(payload[:8])))
				latencies = append(latencies, time.Since(sent))
			}
			n := received.Add(1)
			<-window // release one slot
			if n == int64(c.Packets) {
				close(done)
			}
		},
	})
	if err != nil {
		return Table1Result{}, err
	}
	defer egress.Close()

	// Ingress endpoint.
	ingressTr, err := net.Attach(wire.MustAddr("fd00::1"))
	if err != nil {
		return Table1Result{}, err
	}
	ingressID, err := handshake.NewIdentity()
	if err != nil {
		return Table1Result{}, err
	}
	ingress, err := pipe.New(pipe.Config{Transport: ingressTr, Identity: ingressID})
	if err != nil {
		return Table1Result{}, err
	}
	defer ingress.Close()

	if err := ingress.Connect(node.Addr()); err != nil {
		return Table1Result{}, err
	}
	if err := egress.Connect(node.Addr()); err != nil {
		return Table1Result{}, err
	}

	const conn = wire.ConnectionID(1)
	var hdr wire.ILPHeader
	switch c.Mode {
	case "no-service":
		// Pre-install the decision-cache rule so every packet rides the
		// fast path: "the packet is merely received by the pipe-terminus
		// and then forwarded out the egress pipe".
		hdr = wire.ILPHeader{Service: wire.SvcNone, Conn: conn}
		node.Cache().Add(
			wire.FlowKey{Src: ingress.LocalAddr(), Service: wire.SvcNone, Conn: conn},
			cache.Action{Forward: []wire.Addr{egress.LocalAddr()}},
		)
	case "null-service":
		opts := []sn.ModuleOption{sn.WithTransport(c.Transport), sn.WithQueueDepth(c.Outstanding * 2)}
		if c.Enclave {
			opts = append(opts, sn.WithEnclave())
		}
		if err := node.Register(null.New(), opts...); err != nil {
			return Table1Result{}, err
		}
		hdr = wire.ILPHeader{Service: wire.SvcNull, Conn: conn, Data: null.EgressData(egress.LocalAddr())}
	default:
		return Table1Result{}, fmt.Errorf("bench: unknown mode %q", c.Mode)
	}

	payload := make([]byte, c.PayloadSize)
	if c.PayloadSize < 8 {
		payload = make([]byte, 8)
	}

	start := time.Now()
	go func() {
		for i := 0; i < c.Packets; i++ {
			window <- struct{}{} // acquire a slot
			binary.BigEndian.PutUint64(payload[:8], uint64(time.Now().UnixNano()))
			if err := ingress.Send(node.Addr(), &hdr, payload); err != nil {
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(120 * time.Second):
		return Table1Result{}, fmt.Errorf("bench: timed out with %d/%d received", received.Load(), c.Packets)
	}
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res := Table1Result{
		Case:          c,
		ThroughputPPS: float64(received.Load()) / elapsed.Seconds(),
		Workers:       node.Pipes().RxWorkers(),
	}
	if len(latencies) > 0 {
		res.MedianLatency = latencies[len(latencies)/2]
		res.P99Latency = latencies[len(latencies)*99/100]
	}
	return res, nil
}

// PeeringConfig parameterizes the Appendix C direct-peering benchmark.
type PeeringConfig struct {
	// Tunnels is the number of simultaneous peering tunnels (the paper
	// maintained 98,000).
	Tunnels int
	// RotateEvery is the symmetric key rotation interval (paper: 3 min).
	RotateEvery time.Duration
	// SimulatedDuration is the span of tunnel lifetime simulated. The
	// rotation *work* is real; only the waiting between rotations is
	// virtual.
	SimulatedDuration time.Duration
}

// PeeringResult reports the direct-peering measurements.
type PeeringResult struct {
	Config          PeeringConfig
	Rotations       uint64
	RotationsPerSec float64 // per simulated second
	// CPUFraction is rotation CPU divided by simulated duration: the
	// fraction of one core consumed by key maintenance (the paper reports
	// "less than half a core" for 98k tunnels on its hardware).
	CPUFraction float64
	// BandwidthBps is handshake traffic per simulated second (the paper
	// reports ~3.4 Mbps ≈ 425 KB/s).
	BandwidthBps float64
	// SetupTime is the real time spent creating all tunnels.
	SetupTime time.Duration
}

// RunDirectPeering creates cfg.Tunnels tunnels with staggered rotation
// phases and advances virtual time through cfg.SimulatedDuration,
// performing every due rotation for real.
func RunDirectPeering(cfg PeeringConfig) (PeeringResult, error) {
	mgr := tunnel.NewManager(cfg.RotateEvery)
	start := time.Unix(0, 0)

	// One peer keypair is representative; per-tunnel ephemerals still
	// differ. (Generating 98k static keys would measure key generation,
	// not tunnel maintenance.)
	peer, err := cryptutil.NewStaticKeypair()
	if err != nil {
		return PeeringResult{}, err
	}
	setupStart := time.Now()
	for i := 0; i < cfg.Tunnels; i++ {
		// Stagger initial phases across the rotation interval.
		phase := time.Duration(int64(cfg.RotateEvery) * int64(i) / int64(max(cfg.Tunnels, 1)))
		if _, err := mgr.AddTunnel(peer.PublicKeyBytes(), start.Add(phase-cfg.RotateEvery)); err != nil {
			return PeeringResult{}, err
		}
	}
	setup := time.Since(setupStart)

	// Advance virtual time in rotation-interval quarters.
	step := cfg.RotateEvery / 4
	if step <= 0 {
		step = time.Second
	}
	for now := start; now.Before(start.Add(cfg.SimulatedDuration)); now = now.Add(step) {
		if _, err := mgr.RotateDue(now); err != nil {
			return PeeringResult{}, err
		}
	}
	st := mgr.Snapshot()
	simSecs := cfg.SimulatedDuration.Seconds()
	return PeeringResult{
		Config:          cfg,
		Rotations:       st.Rotations,
		RotationsPerSec: float64(st.Rotations) / simSecs,
		CPUFraction:     st.RotationCPU.Seconds() / simSecs,
		BandwidthBps:    float64(st.HandshakeBytes) * 8 / simSecs,
		SetupTime:       setup,
	}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
