package sn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"interedge/internal/enclave"
)

// Transport selects how packets travel between the pipe-terminus and a
// service module — the design axis Table 1 and §6.3 discuss ("We used IPC
// to send and receive data from services which obviously adds overhead").
type Transport int

const (
	// TransportChan moves packets over Go channels — the "shared memory
	// rings" alternative §6.3 alludes to. This is the default.
	TransportChan Transport = iota
	// TransportDirect invokes the module synchronously on the terminus
	// goroutine (an upper bound: no hand-off at all).
	TransportDirect
	// TransportIPC interposes a real Unix-domain-socket round trip on the
	// packet path, reproducing the paper prototype's IPC configuration.
	// The module logic runs in this process; the data path pays true
	// kernel syscall and copy costs per packet.
	TransportIPC
)

// String names the transport for logs and benchmark labels.
func (t Transport) String() string {
	switch t {
	case TransportChan:
		return "chan"
	case TransportDirect:
		return "direct"
	case TransportIPC:
		return "ipc"
	default:
		return fmt.Sprintf("transport-%d", int(t))
	}
}

// ModuleOption customizes module registration.
type ModuleOption func(*moduleConfig)

type moduleConfig struct {
	transport  Transport
	enclave    bool
	workers    int
	queueDepth int
}

// WithTransport selects the module transport (default TransportChan).
func WithTransport(t Transport) ModuleOption {
	return func(c *moduleConfig) { c.transport = t }
}

// WithEnclave runs the module inside a simulated secure enclave (§6.2
// privacy; Appendix C Table 1).
func WithEnclave() ModuleOption {
	return func(c *moduleConfig) { c.enclave = true }
}

// WithWorkers sets the number of slow-path workers draining the module's
// queue (default 1, matching the paper's one-core-per-service setup).
func WithWorkers(n int) ModuleOption {
	return func(c *moduleConfig) { c.workers = n }
}

// WithQueueDepth sets the slow-path queue depth (default 256; the paper's
// benchmark keeps 64 packets outstanding).
func WithQueueDepth(n int) ModuleOption {
	return func(c *moduleConfig) { c.queueDepth = n }
}

// handleFunc produces a module's decision for one packet, including any
// enclave boundary crossings.
type handleFunc func(pkt *Packet) (*Decision, error)

// newHandleFunc wraps a module invocation, optionally routing the packet
// and decision bytes through the enclave boundary.
func newHandleFunc(mod Module, env Env, encl *enclave.Enclave) handleFunc {
	base := func(pkt *Packet) (*Decision, error) {
		d, err := mod.HandlePacket(env, pkt)
		if err != nil {
			return nil, err
		}
		return &d, nil
	}
	if encl == nil {
		return base
	}
	return func(pkt *Packet) (*Decision, error) {
		in, err := encodePacket(nil, pkt)
		if err != nil {
			return nil, err
		}
		out, err := encl.Run(in, func(inside []byte) ([]byte, error) {
			p, err := decodePacket(inside)
			if err != nil {
				return nil, err
			}
			d, err := base(p)
			if err != nil {
				return nil, err
			}
			return encodeDecision(nil, d)
		})
		if err != nil {
			return nil, err
		}
		return decodeDecision(out)
	}
}

// invoker carries one packet across the module transport and returns the
// module's decision.
type invoker interface {
	invoke(pkt *Packet) (*Decision, error)
	close() error
}

// directInvoker calls the module with no hand-off.
type directInvoker struct{ h handleFunc }

func (d *directInvoker) invoke(pkt *Packet) (*Decision, error) { return d.h(pkt) }
func (d *directInvoker) close() error                          { return nil }

// chanInvoker hands packets to a module goroutine over channels —
// the shared-memory-ring configuration.
type chanInvoker struct {
	req    chan chanReq
	done   chan struct{}
	closed atomic.Bool
}

type chanReq struct {
	pkt   *Packet
	reply chan chanResp
}

type chanResp struct {
	d   *Decision
	err error
}

func newChanInvoker(h handleFunc, serverWorkers int) *chanInvoker {
	ci := &chanInvoker{
		req:  make(chan chanReq, 64),
		done: make(chan struct{}),
	}
	var wg sync.WaitGroup
	for i := 0; i < serverWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range ci.req {
				d, err := h(r.pkt)
				r.reply <- chanResp{d: d, err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ci.done)
	}()
	return ci
}

var errInvokerClosed = errors.New("sn: module invoker closed")

func (c *chanInvoker) invoke(pkt *Packet) (*Decision, error) {
	if c.closed.Load() {
		return nil, errInvokerClosed
	}
	reply := make(chan chanResp, 1)
	c.req <- chanReq{pkt: pkt, reply: reply}
	r := <-reply
	return r.d, r.err
}

func (c *chanInvoker) close() error {
	if c.closed.CompareAndSwap(false, true) {
		close(c.req)
		<-c.done
	}
	return nil
}

// ipcInvoker carries packets over a real Unix domain socket: each invoke
// is a framed write plus a framed read, paying genuine kernel round-trip
// costs like the paper prototype's IPC path.
type ipcInvoker struct {
	mu       sync.Mutex
	conn     net.Conn
	listener net.Listener
	sockPath string
	done     chan struct{}
	closed   atomic.Bool
}

func newIPCInvoker(name string, h handleFunc) (*ipcInvoker, error) {
	dir, err := os.MkdirTemp("", "interedge-ipc-")
	if err != nil {
		return nil, fmt.Errorf("sn: ipc tempdir: %w", err)
	}
	sockPath := filepath.Join(dir, name+".sock")
	l, err := net.Listen("unix", sockPath)
	if err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("sn: ipc listen: %w", err)
	}
	inv := &ipcInvoker{listener: l, sockPath: sockPath, done: make(chan struct{})}

	// Module-side server: accept one connection, serve framed requests.
	go func() {
		defer close(inv.done)
		conn, err := l.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		var lenBuf [4]byte
		for {
			if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
				return
			}
			n := binary.BigEndian.Uint32(lenBuf[:])
			buf := make([]byte, n)
			if _, err := io.ReadFull(conn, buf); err != nil {
				return
			}
			var resp []byte
			pkt, err := decodePacket(buf)
			if err == nil {
				var d *Decision
				if d, err = h(pkt); err == nil {
					if enc, encErr := encodeDecision([]byte{0}, d); encErr == nil {
						resp = enc
					} else {
						err = encErr
					}
				}
			}
			if resp == nil {
				resp = append([]byte{1}, err.Error()...)
			}
			binary.BigEndian.PutUint32(lenBuf[:], uint32(len(resp)))
			if _, err := conn.Write(lenBuf[:]); err != nil {
				return
			}
			if _, err := conn.Write(resp); err != nil {
				return
			}
		}
	}()

	conn, err := net.Dial("unix", sockPath)
	if err != nil {
		l.Close()
		os.RemoveAll(dir)
		return nil, fmt.Errorf("sn: ipc dial: %w", err)
	}
	inv.conn = conn
	return inv, nil
}

func (i *ipcInvoker) invoke(pkt *Packet) (*Decision, error) {
	if i.closed.Load() {
		return nil, errInvokerClosed
	}
	req, err := encodePacket(nil, pkt)
	if err != nil {
		return nil, err
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(req)))
	if _, err := i.conn.Write(lenBuf[:]); err != nil {
		return nil, fmt.Errorf("sn: ipc write: %w", err)
	}
	if _, err := i.conn.Write(req); err != nil {
		return nil, fmt.Errorf("sn: ipc write: %w", err)
	}
	if _, err := io.ReadFull(i.conn, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("sn: ipc read: %w", err)
	}
	resp := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
	if _, err := io.ReadFull(i.conn, resp); err != nil {
		return nil, fmt.Errorf("sn: ipc read: %w", err)
	}
	if len(resp) < 1 {
		return nil, errors.New("sn: ipc empty response")
	}
	if resp[0] != 0 {
		return nil, fmt.Errorf("sn: module error: %s", resp[1:])
	}
	return decodeDecision(resp[1:])
}

func (i *ipcInvoker) close() error {
	if !i.closed.CompareAndSwap(false, true) {
		return nil
	}
	i.conn.Close()
	i.listener.Close()
	<-i.done
	os.RemoveAll(filepath.Dir(i.sockPath))
	return nil
}

// dispatcher is the slow-path queue between the pipe-terminus and one
// module's invoker.
type dispatcher struct {
	queue   chan *Packet
	inv     invoker
	apply   func(pkt *Packet, d *Decision)
	onError func(pkt *Packet, err error)
	wg      sync.WaitGroup
	dropped atomic.Uint64
	handled atomic.Uint64
}

func newDispatcher(inv invoker, workers, depth int, apply func(*Packet, *Decision), onError func(*Packet, error)) *dispatcher {
	d := &dispatcher{
		queue:   make(chan *Packet, depth),
		inv:     inv,
		apply:   apply,
		onError: onError,
	}
	for i := 0; i < workers; i++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for pkt := range d.queue {
				dec, err := d.inv.invoke(pkt)
				if err != nil {
					d.onError(pkt, err)
					continue
				}
				d.handled.Add(1)
				d.apply(pkt, dec)
			}
		}()
	}
	return d
}

// submit enqueues a packet, dropping it if the slow path is saturated
// (overload sheds load rather than stalling the terminus).
func (d *dispatcher) submit(pkt *Packet) bool {
	select {
	case d.queue <- pkt:
		return true
	default:
		d.dropped.Add(1)
		return false
	}
}

func (d *dispatcher) close() {
	close(d.queue)
	d.wg.Wait()
	d.inv.close()
}
