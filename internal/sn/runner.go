package sn

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"interedge/internal/clock"
	"interedge/internal/enclave"
	"interedge/internal/pipe"
	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// Transport selects how packets travel between the pipe-terminus and a
// service module — the design axis Table 1 and §6.3 discuss ("We used IPC
// to send and receive data from services which obviously adds overhead").
type Transport int

const (
	// TransportChan moves packets over Go channels — the "shared memory
	// rings" alternative §6.3 alludes to. This is the default.
	TransportChan Transport = iota
	// TransportDirect invokes the module synchronously on the terminus
	// goroutine (an upper bound: no hand-off at all).
	TransportDirect
	// TransportIPC interposes a real Unix-domain-socket round trip on the
	// packet path, reproducing the paper prototype's IPC configuration.
	// The module logic runs in this process; the data path pays true
	// kernel syscall and copy costs per packet.
	TransportIPC
)

// String names the transport for logs and benchmark labels.
func (t Transport) String() string {
	switch t {
	case TransportChan:
		return "chan"
	case TransportDirect:
		return "direct"
	case TransportIPC:
		return "ipc"
	default:
		return fmt.Sprintf("transport-%d", int(t))
	}
}

// ModuleOption customizes module registration.
type ModuleOption func(*moduleConfig)

type moduleConfig struct {
	transport        Transport
	enclave          bool
	workers          int
	queueDepth       int
	deadline         time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
	degraded         DegradedAction
	degradedDst      wire.Addr
	restartBase      time.Duration
	restartMax       time.Duration
}

// WithTransport selects the module transport (default TransportChan).
func WithTransport(t Transport) ModuleOption {
	return func(c *moduleConfig) { c.transport = t }
}

// WithEnclave runs the module inside a simulated secure enclave (§6.2
// privacy; Appendix C Table 1).
func WithEnclave() ModuleOption {
	return func(c *moduleConfig) { c.enclave = true }
}

// WithWorkers sets the number of slow-path workers draining the module's
// queue (default 1, matching the paper's one-core-per-service setup).
func WithWorkers(n int) ModuleOption {
	return func(c *moduleConfig) { c.workers = n }
}

// WithQueueDepth sets the slow-path queue depth (default 256; the paper's
// benchmark keeps 64 packets outstanding).
func WithQueueDepth(n int) ModuleOption {
	return func(c *moduleConfig) { c.queueDepth = n }
}

// WithDeadline bounds every module invocation: an invocation still running
// after d fails with ErrModuleTimeout and the dispatcher worker moves on,
// so a hung module cannot wedge the slow path. The deadline is driven by
// the SN's injected clock, keeping chaos schedules deterministic. The
// abandoned invocation keeps its goroutine until the module returns; arm
// WithBreaker alongside the deadline so a persistently hung module stops
// being invoked at all after the failure budget. 0 (the default) disables
// the deadline.
func WithDeadline(d time.Duration) ModuleOption {
	return func(c *moduleConfig) { c.deadline = d }
}

// WithBreaker arms the module's circuit breaker: after `failures`
// consecutive failed invocations (errors, timeouts, panics, IPC crashes)
// the breaker opens for cooldown and the module's packets are shed to the
// degraded action (see WithDegradedForward; the default drops them). After
// the cooldown one half-open probe invocation is allowed through: success
// closes the breaker, failure re-opens it for another cooldown. failures
// <= 0 (the default) leaves the breaker disarmed.
func WithBreaker(failures int, cooldown time.Duration) ModuleOption {
	return func(c *moduleConfig) {
		c.breakerThreshold = failures
		c.breakerCooldown = cooldown
	}
}

// WithDegradedForward sheds the module's packets to dst — unmodified
// pass-through forwarding — while the breaker is open, instead of dropping
// them. dst is typically another SN hosting the same module, so the
// service degrades to extra latency rather than loss.
func WithDegradedForward(dst wire.Addr) ModuleOption {
	return func(c *moduleConfig) {
		c.degraded = DegradedForward
		c.degradedDst = dst
	}
}

// WithRestartBackoff tunes the redial policy for a crashed IPC module
// server: capped exponential backoff starting at base, capped at max,
// jittered deterministically (default 25ms base, 1s cap).
func WithRestartBackoff(base, max time.Duration) ModuleOption {
	return func(c *moduleConfig) {
		c.restartBase = base
		c.restartMax = max
	}
}

// handleFunc produces a module's decision for one packet, including any
// enclave boundary crossings.
type handleFunc func(pkt *Packet) (*Decision, error)

// newHandleFunc wraps a module invocation, optionally routing the packet
// and decision bytes through the enclave boundary.
func newHandleFunc(mod Module, env Env, encl *enclave.Enclave) handleFunc {
	base := func(pkt *Packet) (*Decision, error) {
		d, err := mod.HandlePacket(env, pkt)
		if err != nil {
			return nil, err
		}
		return &d, nil
	}
	if encl == nil {
		return base
	}
	return func(pkt *Packet) (*Decision, error) {
		in, err := encodePacket(nil, pkt)
		if err != nil {
			return nil, err
		}
		out, err := encl.Run(in, func(inside []byte) ([]byte, error) {
			p, err := decodePacket(inside)
			if err != nil {
				return nil, err
			}
			d, err := base(p)
			if err != nil {
				return nil, err
			}
			return encodeDecision(nil, d)
		})
		if err != nil {
			return nil, err
		}
		return decodeDecision(out)
	}
}

// recoverHandleFunc contains module panics on the in-process transports:
// a panic unwinds to here, is counted via notePanic, and is returned as a
// *ModulePanicError instead of killing the SN. (The IPC transport recovers
// on the server side instead, where a panic crashes the module-server
// connection — see ipcInvoker.)
func recoverHandleFunc(h handleFunc, notePanic func(v any)) handleFunc {
	return func(pkt *Packet) (d *Decision, err error) {
		defer func() {
			if r := recover(); r != nil {
				notePanic(r)
				d, err = nil, &ModulePanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		return h(pkt)
	}
}

// invoker carries one packet across the module transport and returns the
// module's decision.
type invoker interface {
	invoke(pkt *Packet) (*Decision, error)
	close() error
}

// directInvoker calls the module with no hand-off.
type directInvoker struct{ h handleFunc }

func (d *directInvoker) invoke(pkt *Packet) (*Decision, error) { return d.h(pkt) }
func (d *directInvoker) close() error                          { return nil }

// chanInvoker hands packets to a module goroutine over channels —
// the shared-memory-ring configuration. Shutdown is signalled on stop
// rather than by closing req: a concurrent invoke may be committed to
// sending, and a send on a closed channel would panic the terminus.
type chanInvoker struct {
	req    chan chanReq
	stop   chan struct{} // closed by close(): workers exit, senders abort
	done   chan struct{} // closed once every worker has exited
	closed atomic.Bool
}

type chanReq struct {
	pkt   *Packet
	reply chan chanResp
}

type chanResp struct {
	d   *Decision
	err error
}

func newChanInvoker(h handleFunc, serverWorkers int) *chanInvoker {
	ci := &chanInvoker{
		req:  make(chan chanReq, 64),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	var wg sync.WaitGroup
	for i := 0; i < serverWorkers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case r := <-ci.req:
					d, err := h(r.pkt)
					r.reply <- chanResp{d: d, err: err}
				case <-ci.stop:
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ci.done)
	}()
	return ci
}

var errInvokerClosed = errors.New("sn: module invoker closed")

// ErrModuleTimeout marks a module invocation that exceeded its deadline
// (WithDeadline). The dispatcher worker is freed; the invocation itself
// runs on until the module returns.
var ErrModuleTimeout = errors.New("sn: module invocation deadline exceeded")

// ErrModuleRestarting marks an invocation attempted while the IPC module
// server is down and a redial is in progress.
var ErrModuleRestarting = errors.New("sn: module server down, restarting")

func (c *chanInvoker) invoke(pkt *Packet) (*Decision, error) {
	if c.closed.Load() {
		return nil, errInvokerClosed
	}
	reply := make(chan chanResp, 1)
	select {
	case c.req <- chanReq{pkt: pkt, reply: reply}:
	case <-c.stop:
		return nil, errInvokerClosed
	}
	select {
	case r := <-reply:
		return r.d, r.err
	case <-c.done:
		// Workers have exited; the request may still have been picked up
		// just before, so prefer a reply that made it out.
		select {
		case r := <-reply:
			return r.d, r.err
		default:
			return nil, errInvokerClosed
		}
	}
}

func (c *chanInvoker) close() error {
	if c.closed.CompareAndSwap(false, true) {
		close(c.stop)
		<-c.done
	}
	return nil
}

// maxIPCFrame bounds a framed IPC request or response. Anything larger
// means the stream has desynchronized (or the peer is hostile); the
// connection is torn down rather than allocating unbounded memory.
const maxIPCFrame = 1 << 24

// ipcInvoker carries packets over a real Unix domain socket: each invoke
// is a framed write plus a framed read, paying genuine kernel round-trip
// costs like the paper prototype's IPC path.
//
// The module-side server models a separate module process: a panic in the
// module "kills" it — the serving connection drops, and the accept loop
// stands ready for a new one. The invoker side treats any connection or
// framing failure (including a response that fails to decode: the framing
// can't be trusted after a partial failure) as a crash, closes the poisoned
// connection, and redials in the background with capped-exponential
// deterministically-jittered backoff. Invocations attempted while the
// server is down fail fast with ErrModuleRestarting.
type ipcInvoker struct {
	h           handleFunc
	sockPath    string
	listener    net.Listener
	clk         clock.Clock
	retry       *pipe.Backoff
	logf        func(format string, args ...any)
	notePanic   func(v any)
	noteRestart func()

	// ioMu serializes request/response exchanges; mu guards only the
	// connection pointer and redial flag, so close() can always reach the
	// conn to unblock a hung exchange.
	ioMu       sync.Mutex
	mu         sync.Mutex
	conn       net.Conn
	redialing  bool
	stop       chan struct{} // closed by close(): aborts redial waits
	serverDone chan struct{} // accept loop exited
	closed     atomic.Bool
}

func newIPCInvoker(name string, h handleFunc, clk clock.Clock, retry *pipe.Backoff,
	logf func(format string, args ...any), notePanic func(v any), noteRestart func()) (*ipcInvoker, error) {
	dir, err := os.MkdirTemp("", "interedge-ipc-")
	if err != nil {
		return nil, fmt.Errorf("sn: ipc tempdir: %w", err)
	}
	sockPath := filepath.Join(dir, name+".sock")
	l, err := net.Listen("unix", sockPath)
	if err != nil {
		os.RemoveAll(dir)
		return nil, fmt.Errorf("sn: ipc listen: %w", err)
	}
	inv := &ipcInvoker{
		h:           h,
		sockPath:    sockPath,
		listener:    l,
		clk:         clk,
		retry:       retry,
		logf:        logf,
		notePanic:   notePanic,
		noteRestart: noteRestart,
		stop:        make(chan struct{}),
		serverDone:  make(chan struct{}),
	}

	// Module-side server: accept connections for the invoker's lifetime.
	// Each connection is served on its own goroutine and lives until its
	// conn dies (invoker-side reset, module crash, or invoker close), so a
	// crashed server is back the moment the invoker redials.
	go func() {
		defer close(inv.serverDone)
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go inv.serve(conn)
		}
	}()

	conn, err := net.Dial("unix", sockPath)
	if err != nil {
		l.Close()
		os.RemoveAll(dir)
		return nil, fmt.Errorf("sn: ipc dial: %w", err)
	}
	inv.conn = conn
	return inv, nil
}

// serve answers framed requests on one module-server connection until the
// connection dies or the module "crashes" (panics).
func (i *ipcInvoker) serve(conn net.Conn) {
	defer conn.Close()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(lenBuf[:])
		if n > maxIPCFrame {
			return
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(conn, buf); err != nil {
			return
		}
		resp, crashed := i.handleFrame(buf)
		if crashed {
			// The module "process" died mid-request: no response, the
			// connection drops, the invoker redials a fresh server.
			return
		}
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(resp)))
		if _, err := conn.Write(lenBuf[:]); err != nil {
			return
		}
		if _, err := conn.Write(resp); err != nil {
			return
		}
	}
}

// handleFrame decodes one request and produces the framed response. A
// module panic is recovered here — counted, logged — and reported as a
// crash so serve drops the connection like a dying process would.
func (i *ipcInvoker) handleFrame(buf []byte) (resp []byte, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			i.notePanic(r)
			i.logf("sn: ipc module server panic (crashing server): %v\n%s", r, debug.Stack())
			resp, crashed = nil, true
		}
	}()
	pkt, err := decodePacket(buf)
	if err == nil {
		var d *Decision
		if d, err = i.h(pkt); err == nil {
			if enc, encErr := encodeDecision([]byte{0}, d); encErr == nil {
				return enc, false
			} else {
				err = encErr
			}
		}
	}
	return append([]byte{1}, err.Error()...), false
}

func (i *ipcInvoker) invoke(pkt *Packet) (*Decision, error) {
	if i.closed.Load() {
		return nil, errInvokerClosed
	}
	req, err := encodePacket(nil, pkt)
	if err != nil {
		return nil, err
	}
	i.ioMu.Lock()
	defer i.ioMu.Unlock()
	i.mu.Lock()
	conn := i.conn
	if conn == nil {
		i.ensureRedialLocked()
		i.mu.Unlock()
		return nil, ErrModuleRestarting
	}
	i.mu.Unlock()

	// Any connection or framing failure poisons the stream: drop the
	// connection and let the background redial bring up a fresh one.
	fail := func(op string, err error) (*Decision, error) {
		i.mu.Lock()
		if i.conn == conn {
			i.conn = nil
			i.ensureRedialLocked()
		}
		i.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("sn: ipc %s (module server connection reset): %w", op, err)
	}

	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(req)))
	if _, err := conn.Write(lenBuf[:]); err != nil {
		return fail("write", err)
	}
	if _, err := conn.Write(req); err != nil {
		return fail("write", err)
	}
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return fail("read", err)
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxIPCFrame {
		return fail("read", errors.New("oversized response frame"))
	}
	resp := make([]byte, n)
	if _, err := io.ReadFull(conn, resp); err != nil {
		return fail("read", err)
	}
	if len(resp) < 1 {
		return fail("read", errors.New("empty response"))
	}
	if resp[0] != 0 {
		// A module-level error leaves the framing intact; the connection
		// stays pooled.
		return nil, fmt.Errorf("sn: module error: %s", resp[1:])
	}
	dec, err := decodeDecision(resp[1:])
	if err != nil {
		// The frame arrived but its contents don't parse: the stream
		// offset can no longer be trusted, so resynchronize by redialing
		// instead of returning a poisoned connection to the pool.
		return fail("decode", err)
	}
	return dec, nil
}

// ensureRedialLocked starts the background redial loop if one isn't
// already running. Caller holds i.mu.
func (i *ipcInvoker) ensureRedialLocked() {
	if i.redialing || i.closed.Load() {
		return
	}
	i.redialing = true
	go i.redialLoop()
}

// redialLoop re-establishes the module-server connection with capped
// exponential backoff and deterministic jitter (the pipe layer's redial
// policy), until it succeeds or the invoker closes.
func (i *ipcInvoker) redialLoop() {
	for attempt := 0; ; attempt++ {
		t := i.clk.NewTimer(i.retry.Attempt(attempt))
		select {
		case <-t.C():
		case <-i.stop:
			t.Stop()
			i.mu.Lock()
			i.redialing = false
			i.mu.Unlock()
			return
		}
		conn, err := net.Dial("unix", i.sockPath)
		if err != nil {
			i.logf("sn: ipc module server redial attempt %d failed: %v", attempt, err)
			continue
		}
		i.mu.Lock()
		if i.closed.Load() {
			i.redialing = false
			i.mu.Unlock()
			conn.Close()
			return
		}
		i.conn = conn
		i.redialing = false
		i.mu.Unlock()
		i.noteRestart()
		return
	}
}

func (i *ipcInvoker) close() error {
	if !i.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(i.stop)
	i.mu.Lock()
	conn := i.conn
	i.conn = nil
	i.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	i.listener.Close()
	<-i.serverDone
	os.RemoveAll(filepath.Dir(i.sockPath))
	return nil
}

// dispatcher is the slow-path queue between the pipe-terminus and one
// module's invoker, and the module's containment point: it enforces the
// per-invoke deadline, drives the circuit breaker, and sheds to the
// degraded action while the breaker is open.
type dispatcher struct {
	queue    chan *Packet
	inv      invoker
	clk      clock.Clock
	deadline time.Duration
	brk      *breaker
	apply    func(pkt *Packet, d *Decision)
	onError  func(pkt *Packet, err error)
	degrade  func(pkt *Packet) // runs for packets shed by an open breaker
	wg       sync.WaitGroup

	// Containment counters are telemetry instruments labeled by module
	// name; ModuleHealth reads them back as a legacy view.
	dropped  *telemetry.Counter
	handled  *telemetry.Counter
	errored  *telemetry.Counter
	timeouts *telemetry.Counter
	panics   *telemetry.Counter
	restarts *telemetry.Counter
	shed     *telemetry.Counter
}

type dispatcherConfig struct {
	workers  int
	depth    int
	clk      clock.Clock
	deadline time.Duration
	brk      *breaker
	module   string              // label value for the per-module instruments
	telem    *telemetry.Registry // nil homes the instruments privately
	apply    func(*Packet, *Decision)
	onError  func(*Packet, error)
	degrade  func(*Packet)
}

func newDispatcher(inv invoker, cfg dispatcherConfig) *dispatcher {
	reg := cfg.telem
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	ctr := func(base string) *telemetry.Counter {
		return reg.Counter(telemetry.Name(base, "module", cfg.module))
	}
	d := &dispatcher{
		queue:    make(chan *Packet, cfg.depth),
		inv:      inv,
		clk:      cfg.clk,
		deadline: cfg.deadline,
		brk:      cfg.brk,
		apply:    cfg.apply,
		onError:  cfg.onError,
		degrade:  cfg.degrade,
		dropped:  ctr("sn_module_dropped_total"),
		handled:  ctr("sn_module_handled_total"),
		errored:  ctr("sn_module_errored_total"),
		timeouts: ctr("sn_module_timeouts_total"),
		panics:   ctr("sn_module_panics_total"),
		restarts: ctr("sn_module_restarts_total"),
		shed:     ctr("sn_module_shed_total"),
	}
	for i := 0; i < cfg.workers; i++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for pkt := range d.queue {
				if !d.brk.allow() {
					d.shed.Add(1)
					if d.degrade != nil {
						d.degrade(pkt)
					}
					continue
				}
				dec, err := d.invokeOne(pkt)
				d.brk.onResult(err)
				if err != nil {
					d.errored.Add(1)
					if errors.Is(err, ErrModuleTimeout) {
						d.timeouts.Add(1)
					}
					d.onError(pkt, err)
					continue
				}
				d.handled.Add(1)
				d.apply(pkt, dec)
			}
		}()
	}
	return d
}

// invokeOne runs one invocation under the module deadline. On timeout the
// worker abandons the invocation (its goroutine runs on until the module
// returns; the buffered channel lets its late result be dropped silently)
// and reports ErrModuleTimeout to the breaker.
func (d *dispatcher) invokeOne(pkt *Packet) (*Decision, error) {
	if d.deadline <= 0 {
		return d.inv.invoke(pkt)
	}
	type res struct {
		dec *Decision
		err error
	}
	ch := make(chan res, 1)
	go func() {
		dec, err := d.inv.invoke(pkt)
		ch <- res{dec, err}
	}()
	t := d.clk.NewTimer(d.deadline)
	select {
	case r := <-ch:
		t.Stop()
		return r.dec, r.err
	case <-t.C():
		return nil, ErrModuleTimeout
	}
}

// submit enqueues a packet, dropping it if the slow path is saturated
// (overload sheds load rather than stalling the terminus).
func (d *dispatcher) submit(pkt *Packet) bool {
	select {
	case d.queue <- pkt:
		return true
	default:
		d.dropped.Add(1)
		return false
	}
}

func (d *dispatcher) close() {
	close(d.queue)
	d.wg.Wait()
	d.inv.close()
}
