package sn

import (
	"testing"

	"interedge/internal/handshake"
	"interedge/internal/netsim"
	"interedge/internal/pipe"
	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// TestFastPathForwardAllocs pins the full cache-hit forward path's
// allocation budget: terminus entry → cache lookup → re-seal with the raw
// inbound header → transport send. With pooled seal buffers and the scratch
// crypto API the only steady-state allocation is the netsim transport's
// per-delivery datagram copy, which the Send contract makes transport-owned.
func TestFastPathForwardAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime changes sync.Pool retention and alloc counts")
	}
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5")

	// Egress with a no-op handler so its receive side is allocation-free
	// after warmup and does not pollute the measurement.
	egressTr, err := net.Attach(wire.MustAddr("fd00::e"))
	if err != nil {
		t.Fatal(err)
	}
	egressID, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	egress, err := pipe.New(pipe.Config{
		Transport: egressTr,
		Identity:  egressID,
		RxWorkers: 1,
		Handler:   func(pipe.Sender, wire.Addr, wire.ILPHeader, []byte, []byte) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { egress.Close() })
	if err := egress.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}

	src := wire.MustAddr("fd00::1")
	hdr := wire.ILPHeader{Service: wire.SvcNone, Conn: 7}
	raw, err := hdr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	node.Cache().Add(
		wire.FlowKey{Src: src, Service: wire.SvcNone, Conn: 7},
		cache.Action{Forward: []wire.Addr{egress.LocalAddr()}},
	)
	payload := make([]byte, 256)

	for i := 0; i < 32; i++ { // warm pool, crypto scratches, and egress side
		node.handlePacket(node.mgr, src, hdr, raw, payload)
	}
	allocs := testing.AllocsPerRun(200, func() {
		node.handlePacket(node.mgr, src, hdr, raw, payload)
	})
	if allocs > 1 {
		t.Fatalf("fast-path forward allocated %.1f times per op, want <= 1 (transport copy)", allocs)
	}
	if fwd := node.Counters().Forwarded; fwd == 0 {
		t.Fatal("nothing was forwarded; fast path not exercised")
	}
}
