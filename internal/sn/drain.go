package sn

import (
	"crypto/ed25519"
	"fmt"
	"time"

	"interedge/internal/pipe"
	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// This file is the SN side of live drain and failover (DESIGN.md
// "Placement, drain, and failover"). A drain moves every designated host
// pipe — master secret, key epochs, and cache-warmth hints — to a sibling
// SN over the sealed inter-SN pipe (SvcHandoff), tells each host where to
// rebind (SvcPipeMove), and drops the local state. Hosts keep their keys;
// nobody re-handshakes unless a race or a death forces it.

// Placer maps a host to its drain target. Returning ok=false skips the
// peer (it is not a host this drain should move — e.g. a sibling SN or a
// gateway pipe).
type Placer func(host wire.Addr) (target wire.Addr, ok bool)

// Drain migrates every peer the placer claims to its target, counting one
// drain operation: sn_drain_started_total on entry, then completed or
// aborted depending on whether every handoff succeeded, with the wall
// duration observed into sn_drain_duration_ns. Individual handoff failures
// degrade to a plain teardown for that host — it re-establishes against
// its new SN via the normal handshake path — so a drain never strands a
// host; it only loses the no-re-handshake optimization.
//
// Drain blocks on inter-SN connects and must not be called from a packet
// handler; controllers run it on their own goroutine.
func (s *SN) Drain(place Placer) error {
	s.drainStarted.Add(1)
	start := time.Now()
	var failed int
	for _, p := range s.mgr.Peers() {
		target, ok := place(p.Addr)
		if !ok {
			continue
		}
		if err := s.HandoffPipe(p.Addr, target); err != nil {
			failed++
			s.cfg.Logf("sn %s: handoff of %s to %s failed (%v); dropping for re-establishment", s.Addr(), p.Addr, target, err)
			s.dropHostState(p.Addr)
		}
	}
	s.drainNs.Observe(uint64(time.Since(start)))
	if failed > 0 {
		s.drainAborted.Add(1)
		return fmt.Errorf("sn: drain moved with %d handoff failure(s), affected hosts fall back to re-establishment", failed)
	}
	s.drainCompleted.Add(1)
	return nil
}

// HandoffPipe moves one established host pipe to target: exports the pipe
// state, attaches up to wire.MaxHandoffWarmth decision-cache rules that
// forward to the host (the warmth hints), ships it over the sealed pipe to
// target, points the host at its successor, and finally drops local state.
// Ordering matters: the state reaches the target before the host learns to
// rebind, so the first packet the host sends at its new SN finds the
// imported pipe waiting.
func (s *SN) HandoffPipe(host, target wire.Addr) error {
	state, err := s.mgr.ExportPeer(host)
	if err != nil {
		return err
	}
	if len(state.Identity) != ed25519.PublicKeySize {
		return fmt.Errorf("sn: peer %s has no ed25519 identity to hand off", host)
	}
	hs := wire.HandoffState{
		Host:      state.Addr,
		Initiator: state.Initiator,
		BaseSPI:   state.BaseSPI,
		TxEpoch:   state.TxEpoch,
		RxEpoch:   state.RxEpoch,
		Warmth:    s.cache.CollectDest(host, wire.MaxHandoffWarmth),
	}
	copy(hs.Identity[:], state.Identity)
	copy(hs.Master[:], state.Master[:])
	enc, err := hs.Encode()
	if err != nil {
		return err
	}
	if err := s.mgr.Connect(target); err != nil {
		return fmt.Errorf("sn: no pipe to drain target %s: %w", target, err)
	}
	hdr := wire.ILPHeader{Service: wire.SvcHandoff}
	if err := s.mgr.Send(target, &hdr, enc); err != nil {
		return fmt.Errorf("sn: handoff send to %s: %w", target, err)
	}
	move := wire.ILPHeader{Service: wire.SvcPipeMove}
	if err := s.mgr.Send(host, &move, wire.EncodePipeMove(target)); err != nil {
		return fmt.Errorf("sn: move notice to %s: %w", host, err)
	}
	s.dropHostState(host)
	return nil
}

// dropHostState removes the local pipe and every cached decision touching
// the host. Traffic still in flight toward this SN for the host falls back
// to the slow path, where resolution — already repointed by the ring
// change — forwards it to the successor.
func (s *SN) dropHostState(host wire.Addr) {
	s.mgr.DropPeer(host)
	s.cache.InvalidateSource(host)
	s.cache.InvalidateDest(host)
}

// NoteFailover counts one host re-placement forced by an unannounced SN
// death (sn_failovers_total). The placement controller calls it on the SN
// that absorbs the host.
func (s *SN) NoteFailover() { s.failovers.Add(1) }

// handleHandoff imports pipe state a draining sibling shipped us. Runs on
// an rx worker, so everything here is non-blocking.
func (s *SN) handleHandoff(src wire.Addr, payload []byte) {
	if s.cfg.AcceptHandoff == nil || !s.cfg.AcceptHandoff(src) {
		s.cfg.Logf("sn %s: rejected handoff from %s", s.Addr(), src)
		return
	}
	var hs wire.HandoffState
	if _, err := hs.DecodeFromBytes(payload); err != nil {
		s.cfg.Logf("sn %s: malformed handoff from %s: %v", s.Addr(), src, err)
		return
	}
	st := pipe.PipeState{
		Addr:      hs.Host,
		Identity:  ed25519.PublicKey(append([]byte(nil), hs.Identity[:]...)),
		Initiator: hs.Initiator,
		BaseSPI:   hs.BaseSPI,
		TxEpoch:   hs.TxEpoch,
		RxEpoch:   hs.RxEpoch,
	}
	copy(st.Master[:], hs.Master[:])
	if err := s.mgr.ImportPeer(st); err != nil {
		// ErrPeerExists means a full handshake with the host raced us and
		// won; its keys are fresher than the export, so losing is correct.
		s.cfg.Logf("sn %s: handoff import of %s from %s skipped: %v", s.Addr(), hs.Host, src, err)
		return
	}
	s.handoffPipes.Add(1)
	// Warmth hints: rules that forwarded to the host at the old SN keep
	// their flows on the fast path here from the first packet.
	for _, k := range hs.Warmth {
		s.cache.Add(k, cache.Action{Forward: []wire.Addr{hs.Host}})
	}
	s.cfg.Logf("sn %s: imported pipe for %s from %s (%d warm rules)", s.Addr(), hs.Host, src, len(hs.Warmth))
}
