package cache

import (
	"fmt"
	"sync"
	"testing"

	"interedge/internal/wire"
)

func flowKey(g, i int) wire.FlowKey {
	return wire.FlowKey{
		Src:     wire.MustAddr(fmt.Sprintf("fd00::%x:%x", g+1, i+1)),
		Service: wire.SvcNone,
		Conn:    wire.ConnectionID(i),
	}
}

func TestShardCountRounding(t *testing.T) {
	cases := []struct {
		capacity, shards, want int
	}{
		{100, 3, 4},   // rounds up to a power of two
		{100, 1, 1},   // explicit single shard
		{2, 8, 2},     // clamped: every shard needs a slot
		{8192, 8, 8},  // exact power of two
		{8192, 0, 1},  // nonsense shard counts fall back to one
		{8192, -4, 1}, // nonsense shard counts fall back to one
	}
	for _, c := range cases {
		if got := NewSharded(c.capacity, c.shards).ShardCount(); got != c.want {
			t.Errorf("NewSharded(%d, %d).ShardCount() = %d, want %d", c.capacity, c.shards, got, c.want)
		}
	}
	// Small auto-sized caches stay single-shard so eviction order tests
	// keep their exact semantics.
	if got := New(4).ShardCount(); got != 1 {
		t.Errorf("New(4).ShardCount() = %d, want 1", got)
	}
}

func TestShardedCapacityConserved(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		c := NewSharded(1000, shards) // not divisible by 4 or 8
		if got := c.Snapshot().Capacity; got != 1000 {
			t.Errorf("NewSharded(1000, %d) capacity %d, want 1000", shards, got)
		}
	}
}

// TestStripedConcurrent hammers one striped cache from many goroutines
// mixing every operation; run under -race this validates the per-shard
// locking, and the final counters must be self-consistent.
func TestStripedConcurrent(t *testing.T) {
	const goroutines = 8
	const perG = 2000
	c := NewSharded(8192, 8)
	if c.ShardCount() != 8 {
		t.Fatalf("ShardCount() = %d, want 8", c.ShardCount())
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := flowKey(g, i)
				c.Add(key, Action{Drop: true})
				if act, ok := c.Lookup(key); ok && !act.Drop {
					t.Errorf("lookup returned foreign action for %v", key)
				}
				switch {
				case i%7 == 0:
					c.Invalidate(key)
				case i%31 == 0:
					c.Snapshot()
					c.Len()
					c.HitCount(key)
				case i%97 == 0:
					c.InvalidateSource(key.Src)
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Snapshot()
	if st.Inserts != goroutines*perG {
		t.Errorf("inserts = %d, want %d", st.Inserts, goroutines*perG)
	}
	if st.Size != c.Len() {
		t.Errorf("snapshot size %d != Len %d", st.Size, c.Len())
	}
	if st.Size > st.Capacity {
		t.Errorf("size %d exceeds capacity %d", st.Size, st.Capacity)
	}
	if st.Hits+st.Misses < goroutines*perG {
		t.Errorf("hits+misses = %d, want >= %d", st.Hits+st.Misses, goroutines*perG)
	}
}

// TestStripedKeysRoute checks entries added through the striped façade are
// found again regardless of which shard they hash to, and that eviction in
// one shard never disturbs another shard's entries beyond capacity limits.
func TestStripedKeysRoute(t *testing.T) {
	c := NewSharded(4096, 4)
	const n = 1024 // well under capacity: nothing should evict
	for i := 0; i < n; i++ {
		c.Add(flowKey(i%5, i), Action{Deliver: true})
	}
	for i := 0; i < n; i++ {
		if _, ok := c.Lookup(flowKey(i%5, i)); !ok {
			t.Fatalf("key %d missing after insert below capacity", i)
		}
	}
	if ev := c.Snapshot().Evictions; ev != 0 {
		t.Fatalf("evictions = %d below capacity, want 0", ev)
	}
}

// TestLookupZeroAlloc pins the fast-path budget: a decision-cache hit must
// not allocate.
func TestLookupZeroAlloc(t *testing.T) {
	c := NewSharded(4096, 4)
	key := flowKey(0, 0)
	c.Add(key, Action{Forward: []wire.Addr{wire.MustAddr("fd00::2")}})
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.Lookup(key); !ok {
			t.Fatal("miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("Lookup allocated %.1f times per op, want 0", allocs)
	}
}
