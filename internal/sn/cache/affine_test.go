package cache

import (
	"fmt"
	"testing"

	"interedge/internal/wire"
)

func TestSourceAffineShardSelection(t *testing.T) {
	const workers = 3 // deliberately not a power of two
	c := NewSourceAffine(8192, workers)
	if got := c.ShardCount(); got != workers {
		t.Fatalf("ShardCount() = %d, want exactly %d (affinity requires shards == workers)", got, workers)
	}
	// Every key with the same source must land on the shard
	// wire.ShardIndex picks — the one the RX worker for that source owns.
	for i := 0; i < 64; i++ {
		src := wire.MustAddr(fmt.Sprintf("fd00::%x", i+1))
		want := wire.ShardIndex(src, workers)
		for conn := 0; conn < 4; conn++ {
			key := wire.FlowKey{Src: src, Service: wire.SvcNone, Conn: wire.ConnectionID(conn)}
			if got := c.shardFor(key); got != c.shards[want] {
				t.Fatalf("key %v routed off its source's shard", key)
			}
		}
	}
}

func TestSourceAffineCapacityConserved(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 5, 7} {
		c := NewSourceAffine(1000, workers)
		if got := c.Snapshot().Capacity; got != 1000 {
			t.Errorf("NewSourceAffine(1000, %d) capacity %d, want 1000", workers, got)
		}
	}
	// Degenerate inputs clamp instead of panicking.
	if got := NewSourceAffine(2, 8).ShardCount(); got != 2 {
		t.Errorf("NewSourceAffine(2, 8).ShardCount() = %d, want 2", got)
	}
	if got := NewSourceAffine(8, 0).ShardCount(); got != 1 {
		t.Errorf("NewSourceAffine(8, 0).ShardCount() = %d, want 1", got)
	}
}

func TestLookupNAccountsRun(t *testing.T) {
	c := NewSourceAffine(4096, 2)
	key := flowKey(0, 0)
	c.Add(key, Action{Drop: true})
	act, ok := c.LookupN(key, 32)
	if !ok || !act.Drop {
		t.Fatalf("LookupN hit = (%v, %v)", act, ok)
	}
	if hits, _ := c.HitCount(key); hits != 32 {
		t.Fatalf("entry hits = %d after LookupN(_, 32), want 32", hits)
	}
	if st := c.Snapshot(); st.Hits != 32 {
		t.Fatalf("cache hits = %d, want 32", st.Hits)
	}
	// A run-coalesced miss records the whole run as misses.
	if _, ok := c.LookupN(flowKey(1, 9), 8); ok {
		t.Fatal("unexpected hit")
	}
	if st := c.Snapshot(); st.Misses != 8 {
		t.Fatalf("cache misses = %d, want 8", st.Misses)
	}
}

func TestLookupNZeroAlloc(t *testing.T) {
	c := NewSourceAffine(4096, 4)
	key := flowKey(0, 0)
	c.Add(key, Action{Forward: []wire.Addr{wire.MustAddr("fd00::2")}})
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := c.LookupN(key, 32); !ok {
			t.Fatal("miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("LookupN allocated %.1f times per op, want 0", allocs)
	}
}
