// Package cache implements the SN decision cache described in §4 and
// Appendix B: an exact-match match-action table keyed by (L3 source,
// service ID, connection ID). Service modules populate it so the
// pipe-terminus can act on packets without invoking the module.
//
// Per Appendix B.1, implementations may "arbitrarily evict entries, even
// when the connections they are associated with are active" — correctness
// never depends on an entry being present, and modules must be able to
// recompute any decision. This implementation uses CLOCK (second-chance)
// eviction, tracks per-entry hit counts, and exposes the "recently used"
// API Appendix B.2 specifies for services managing their own connection
// state.
package cache

import (
	"sync"
	"time"

	"interedge/internal/wire"
)

// Action is the cached forwarding decision for a flow.
type Action struct {
	// Forward lists next-hop destinations; the pipe-terminus sends a copy
	// of the packet to each ("the decision can specify multiple forwarding
	// destinations", §4).
	Forward []wire.Addr
	// Drop discards the packet (used by e.g. DDoS protection). Drop takes
	// precedence over Forward.
	Drop bool
	// Deliver hands the packet to the local delivery hook (for packets
	// terminating at this SN, e.g. addressed to an attached host agent).
	Deliver bool
	// RewriteHeader, if non-nil, replaces the encoded ILP header on
	// forwarded copies (services may rewrite per-hop metadata).
	RewriteHeader []byte
}

// Stats aggregates cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Inserts   uint64
	Size      int
	Capacity  int
}

type entry struct {
	key      wire.FlowKey
	action   Action
	hits     uint64
	lastUsed time.Time
	ref      bool // CLOCK reference bit
	live     bool
}

// Cache is a fixed-capacity decision cache. It is safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	index   map[wire.FlowKey]int
	slots   []entry
	hand    int
	now     func() time.Time
	hits    uint64
	misses  uint64
	evicts  uint64
	inserts uint64
	enabled bool
}

// New creates a cache with the given capacity (entries). Capacity must be
// positive.
func New(capacity int) *Cache {
	if capacity <= 0 {
		panic("cache: capacity must be positive")
	}
	return &Cache{
		index:   make(map[wire.FlowKey]int, capacity),
		slots:   make([]entry, capacity),
		now:     time.Now,
		enabled: true,
	}
}

// SetNowFunc overrides the time source (tests).
func (c *Cache) SetNowFunc(f func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = f
}

// SetEnabled turns the cache on or off. When disabled, Lookup always
// misses; used by the ablation benchmarks.
func (c *Cache) SetEnabled(on bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.enabled = on
}

// Lookup returns the cached action for key, if any, recording a hit or
// miss and marking the entry recently used.
func (c *Cache) Lookup(key wire.FlowKey) (Action, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.enabled {
		c.misses++
		return Action{}, false
	}
	i, ok := c.index[key]
	if !ok {
		c.misses++
		return Action{}, false
	}
	e := &c.slots[i]
	e.hits++
	e.ref = true
	e.lastUsed = c.now()
	c.hits++
	return e.action, true
}

// Add installs (or replaces) the action for key, evicting via CLOCK if the
// cache is full.
func (c *Cache) Add(key wire.FlowKey, action Action) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.inserts++
	if i, ok := c.index[key]; ok {
		c.slots[i].action = action
		c.slots[i].ref = true
		c.slots[i].lastUsed = c.now()
		return
	}
	i := c.findSlot()
	if c.slots[i].live {
		delete(c.index, c.slots[i].key)
		c.evicts++
	}
	// New entries start with the reference bit clear: only an actual
	// Lookup grants a second chance, so one-shot flows evict first.
	c.slots[i] = entry{key: key, action: action, lastUsed: c.now(), live: true}
	c.index[key] = i
}

// findSlot returns a free slot index, running the CLOCK hand if the cache
// is full. Must be called with mu held.
func (c *Cache) findSlot() int {
	for range c.slots {
		e := &c.slots[c.hand]
		i := c.hand
		c.hand = (c.hand + 1) % len(c.slots)
		if !e.live {
			return i
		}
	}
	// All live: second-chance scan.
	for {
		e := &c.slots[c.hand]
		i := c.hand
		c.hand = (c.hand + 1) % len(c.slots)
		if e.ref {
			e.ref = false
			continue
		}
		return i
	}
}

// Invalidate removes the entry for key, if present.
func (c *Cache) Invalidate(key wire.FlowKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.index[key]; ok {
		delete(c.index, key)
		c.slots[i] = entry{}
	}
}

// InvalidateSource removes all entries whose flow source is src (used when
// a pipe to a peer is torn down).
func (c *Cache) InvalidateSource(src wire.Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, i := range c.index {
		if key.Src == src {
			delete(c.index, key)
			c.slots[i] = entry{}
		}
	}
}

// HitCount returns the entry's hit counter — the Appendix B.2 API
// ("retrieving the hit-count for an entry") services use to learn whether
// a connection is still active.
func (c *Cache) HitCount(key wire.FlowKey) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.index[key]
	if !ok {
		return 0, false
	}
	return c.slots[i].hits, true
}

// RecentlyUsed reports whether the entry was hit within the given window.
func (c *Cache) RecentlyUsed(key wire.FlowKey, window time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	i, ok := c.index[key]
	if !ok {
		return false
	}
	return c.now().Sub(c.slots[i].lastUsed) <= window
}

// Snapshot returns current counters.
func (c *Cache) Snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evicts, Inserts: c.inserts,
		Size: len(c.index), Capacity: len(c.slots),
	}
}

// Len returns the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}
