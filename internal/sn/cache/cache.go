// Package cache implements the SN decision cache described in §4 and
// Appendix B: an exact-match match-action table keyed by (L3 source,
// service ID, connection ID). Service modules populate it so the
// pipe-terminus can act on packets without invoking the module.
//
// Per Appendix B.1, implementations may "arbitrarily evict entries, even
// when the connections they are associated with are active" — correctness
// never depends on an entry being present, and modules must be able to
// recompute any decision. This implementation uses CLOCK (second-chance)
// eviction, tracks per-entry hit counts, and exposes the "recently used"
// API Appendix B.2 specifies for services managing their own connection
// state.
//
// To keep the sharded pipe-terminus workers from serializing on a single
// lock, the table is striped across 2^k independent CLOCK shards selected
// by a hash of the flow key. Each shard has its own lock, slots, hand, and
// counters; Snapshot merges the per-shard counters. Striping is invisible
// to correctness: eviction was already allowed to be arbitrary (B.1), so
// per-shard CLOCK sweeps are just one more admissible eviction order.
package cache

import (
	"runtime"
	"sort"
	"sync"
	"time"

	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// Action is the cached forwarding decision for a flow.
type Action struct {
	// Forward lists next-hop destinations; the pipe-terminus sends a copy
	// of the packet to each ("the decision can specify multiple forwarding
	// destinations", §4).
	Forward []wire.Addr
	// Drop discards the packet (used by e.g. DDoS protection). Drop takes
	// precedence over Forward.
	Drop bool
	// Deliver hands the packet to the local delivery hook (for packets
	// terminating at this SN, e.g. addressed to an attached host agent).
	Deliver bool
	// RewriteHeader, if non-nil, replaces the encoded ILP header on
	// forwarded copies (services may rewrite per-hop metadata).
	RewriteHeader []byte
}

// Stats aggregates cache counters across all shards.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Inserts   uint64
	Size      int
	Capacity  int
}

type entry struct {
	key      wire.FlowKey
	action   Action
	hits     uint64
	lastUsed time.Time
	ref      bool // CLOCK reference bit
	live     bool
}

// shard is one independently locked CLOCK cache.
type shard struct {
	mu      sync.Mutex
	index   map[wire.FlowKey]int
	slots   []entry
	hand    int
	now     func() time.Time
	hits    uint64
	misses  uint64
	evicts  uint64
	inserts uint64
	enabled bool
}

// minShardCapacity is the smallest per-shard slot count auto-striping will
// produce; small caches stay single-shard so their eviction behavior (and
// the tests pinning it) is unchanged.
const minShardCapacity = 1024

// Cache is a fixed-capacity decision cache striped over power-of-two many
// CLOCK shards. It is safe for concurrent use.
type Cache struct {
	shards []*shard
	mask   uint64
	// srcAffine selects shards by wire.ShardIndex over the flow source
	// alone, mirroring the pipe manager's RX-worker sharding so worker i
	// exclusively owns shard i (NewSourceAffine).
	srcAffine bool
}

// New creates a cache with the given total capacity (entries) and an
// automatic shard count: the largest power of two ≤ GOMAXPROCS that keeps
// every shard at or above minShardCapacity. Capacity must be positive.
func New(capacity int) *Cache {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	for n > 1 && capacity/n < minShardCapacity {
		n >>= 1
	}
	return NewSharded(capacity, n)
}

// NewSharded creates a cache with an explicit shard count (rounded up to a
// power of two, clamped so every shard holds at least one entry). Capacity
// is the total across shards and must be positive.
func NewSharded(capacity, shards int) *Cache {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	for n > capacity && n > 1 {
		n >>= 1
	}
	return newCache(capacity, n, false)
}

// NewSourceAffine creates a cache with exactly `workers` shards selected
// by the flow's source address via wire.ShardIndex — the same hash the
// pipe manager uses to pick the RX worker for a source. With one cache
// shard per RX worker, every fast-path lookup lands on the shard its
// worker exclusively owns: the shard's lock and CLOCK state stay in that
// worker's cache hierarchy instead of bouncing between cores. The shard
// count is not rounded to a power of two because it must equal the worker
// count exactly for the affinity to hold.
func NewSourceAffine(capacity, workers int) *Cache {
	if workers < 1 {
		workers = 1
	}
	if workers > capacity {
		workers = capacity
	}
	return newCache(capacity, workers, true)
}

func newCache(capacity, n int, srcAffine bool) *Cache {
	if capacity <= 0 {
		panic("cache: capacity must be positive")
	}
	c := &Cache{shards: make([]*shard, n), mask: uint64(n - 1), srcAffine: srcAffine}
	base, rem := capacity/n, capacity%n
	for i := range c.shards {
		sz := base
		if i < rem {
			sz++
		}
		c.shards[i] = &shard{
			index:   make(map[wire.FlowKey]int, sz),
			slots:   make([]entry, sz),
			now:     time.Now,
			enabled: true,
		}
	}
	return c
}

// ShardCount returns the number of independent CLOCK shards.
func (c *Cache) ShardCount() int { return len(c.shards) }

// hashKey mixes the full flow key with FNV-1a; the low bits select the
// shard. Allocation-free (Addr.As16 returns a value array).
func hashKey(k wire.FlowKey) uint64 {
	const prime = uint64(1099511628211)
	h := uint64(14695981039346656037)
	a := k.Src.As16()
	for _, b := range a {
		h = (h ^ uint64(b)) * prime
	}
	h = (h ^ uint64(k.Service)) * prime
	h = (h ^ uint64(k.Conn)) * prime
	return h
}

func (c *Cache) shardFor(key wire.FlowKey) *shard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	if c.srcAffine {
		return c.shards[wire.ShardIndex(key.Src, len(c.shards))]
	}
	return c.shards[hashKey(key)&c.mask]
}

// SetNowFunc overrides the time source (tests).
func (c *Cache) SetNowFunc(f func() time.Time) {
	for _, s := range c.shards {
		s.mu.Lock()
		s.now = f
		s.mu.Unlock()
	}
}

// SetEnabled turns the cache on or off. When disabled, Lookup always
// misses; used by the ablation benchmarks.
func (c *Cache) SetEnabled(on bool) {
	for _, s := range c.shards {
		s.mu.Lock()
		s.enabled = on
		s.mu.Unlock()
	}
}

// Lookup returns the cached action for key, if any, recording a hit or
// miss and marking the entry recently used.
func (c *Cache) Lookup(key wire.FlowKey) (Action, bool) {
	return c.LookupN(key, 1)
}

// LookupN is Lookup for a run of n same-key packets: the batched fast
// path coalesces decision-cache traffic per (src, SPI) run, so one lock
// acquisition accounts the whole run. Hit counters advance by n (Appendix
// B.2 services read hit counts to detect live connections, so a
// run-coalesced hit must be indistinguishable from n sequential hits);
// a miss records n misses.
func (c *Cache) LookupN(key wire.FlowKey, n uint64) (Action, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.enabled {
		s.misses += n
		return Action{}, false
	}
	i, ok := s.index[key]
	if !ok {
		s.misses += n
		return Action{}, false
	}
	e := &s.slots[i]
	e.hits += n
	e.ref = true
	e.lastUsed = s.now()
	s.hits += n
	return e.action, true
}

// Add installs (or replaces) the action for key, evicting via CLOCK within
// the key's shard if that shard is full.
func (c *Cache) Add(key wire.FlowKey, action Action) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inserts++
	if i, ok := s.index[key]; ok {
		s.slots[i].action = action
		s.slots[i].ref = true
		s.slots[i].lastUsed = s.now()
		return
	}
	i := s.findSlot()
	if s.slots[i].live {
		delete(s.index, s.slots[i].key)
		s.evicts++
	}
	// New entries start with the reference bit clear: only an actual
	// Lookup grants a second chance, so one-shot flows evict first.
	s.slots[i] = entry{key: key, action: action, lastUsed: s.now(), live: true}
	s.index[key] = i
}

// findSlot returns a free slot index, running the CLOCK hand if the shard
// is full. Must be called with s.mu held.
func (s *shard) findSlot() int {
	for range s.slots {
		e := &s.slots[s.hand]
		i := s.hand
		s.hand = (s.hand + 1) % len(s.slots)
		if !e.live {
			return i
		}
	}
	// All live: second-chance scan.
	for {
		e := &s.slots[s.hand]
		i := s.hand
		s.hand = (s.hand + 1) % len(s.slots)
		if e.ref {
			e.ref = false
			continue
		}
		return i
	}
}

// Invalidate removes the entry for key, if present.
func (c *Cache) Invalidate(key wire.FlowKey) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.index[key]; ok {
		delete(s.index, key)
		s.slots[i] = entry{}
	}
}

// InvalidateSource removes all entries whose flow source is src (used when
// a pipe to a peer is torn down).
func (c *Cache) InvalidateSource(src wire.Addr) {
	for _, s := range c.shards {
		s.mu.Lock()
		for key, i := range s.index {
			if key.Src == src {
				delete(s.index, key)
				s.slots[i] = entry{}
			}
		}
		s.mu.Unlock()
	}
}

// InvalidateDest removes all entries whose cached action forwards to dst
// (used when the pipe to a next hop dies: the stale route must fall back
// to the slow path so the module can re-decide it once the pipe — with
// fresh keys and epochs — is re-established).
func (c *Cache) InvalidateDest(dst wire.Addr) {
	for _, s := range c.shards {
		s.mu.Lock()
		for key, i := range s.index {
			for _, fwd := range s.slots[i].action.Forward {
				if fwd == dst {
					delete(s.index, key)
					s.slots[i] = entry{}
					break
				}
			}
		}
		s.mu.Unlock()
	}
}

// CollectDest returns up to max flow keys whose cached action forwards to
// dst — the cache-warmth hints a draining SN ships to its successor so the
// moved host's flows keep hitting instead of each taking a cold miss.
// Entries most recently used come first within each shard; max <= 0 means
// no limit. Like Snapshot, the result is per-shard consistent, not one cut.
func (c *Cache) CollectDest(dst wire.Addr, max int) []wire.FlowKey {
	var out []wire.FlowKey
	for _, s := range c.shards {
		s.mu.Lock()
		var keys []wire.FlowKey
		for key, i := range s.index {
			for _, fwd := range s.slots[i].action.Forward {
				if fwd == dst {
					keys = append(keys, key)
					break
				}
			}
		}
		sort.Slice(keys, func(a, b int) bool {
			return s.slots[s.index[keys[a]]].lastUsed.After(s.slots[s.index[keys[b]]].lastUsed)
		})
		s.mu.Unlock()
		out = append(out, keys...)
		if max > 0 && len(out) >= max {
			return out[:max]
		}
	}
	return out
}

// HitCount returns the entry's hit counter — the Appendix B.2 API
// ("retrieving the hit-count for an entry") services use to learn whether
// a connection is still active.
func (c *Cache) HitCount(key wire.FlowKey) (uint64, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.index[key]
	if !ok {
		return 0, false
	}
	return s.slots[i].hits, true
}

// RecentlyUsed reports whether the entry was hit within the given window.
func (c *Cache) RecentlyUsed(key wire.FlowKey, window time.Duration) bool {
	s := c.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.index[key]
	if !ok {
		return false
	}
	return s.now().Sub(s.slots[i].lastUsed) <= window
}

// RegisterTelemetry implements telemetry.Registrable. The cache keeps its
// counters as cheap per-shard fields under the shard locks (registry
// atomics would put contended cache lines back on the lookup path that
// striping exists to avoid), so the instruments are lazy: each snapshot
// read merges the shards on demand.
func (c *Cache) RegisterTelemetry(r *telemetry.Registry) {
	stat := func(pick func(Stats) uint64) func() uint64 {
		return func() uint64 { return pick(c.Snapshot()) }
	}
	_ = r.Register(
		telemetry.NewCounterFunc("cache_hits_total", stat(func(s Stats) uint64 { return s.Hits })),
		telemetry.NewCounterFunc("cache_misses_total", stat(func(s Stats) uint64 { return s.Misses })),
		telemetry.NewCounterFunc("cache_evictions_total", stat(func(s Stats) uint64 { return s.Evictions })),
		telemetry.NewCounterFunc("cache_inserts_total", stat(func(s Stats) uint64 { return s.Inserts })),
		telemetry.NewGaugeFunc("cache_entries", func() int64 { return int64(c.Len()) }),
		telemetry.NewGaugeFunc("cache_capacity", func() int64 {
			n := 0
			for _, s := range c.shards {
				n += len(s.slots)
			}
			return int64(n)
		}),
	)
}

// Snapshot returns current counters merged across all shards. Each shard is
// read under its own lock; the merged struct is not one consistent cut
// across shards.
func (c *Cache) Snapshot() Stats {
	var st Stats
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evicts
		st.Inserts += s.inserts
		st.Size += len(s.index)
		st.Capacity += len(s.slots)
		s.mu.Unlock()
	}
	return st
}

// Len returns the number of live entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.index)
		s.mu.Unlock()
	}
	return n
}
