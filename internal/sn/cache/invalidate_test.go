package cache

import (
	"testing"

	"interedge/internal/wire"
)

func TestInvalidateDestRemovesOnlyMatchingRoutes(t *testing.T) {
	c := NewSharded(64, 4)
	hop1 := wire.MustAddr("fd00::a")
	hop2 := wire.MustAddr("fd00::b")

	k1 := wire.FlowKey{Src: wire.MustAddr("fd00::1"), Service: wire.SvcEcho, Conn: 1}
	k2 := wire.FlowKey{Src: wire.MustAddr("fd00::2"), Service: wire.SvcEcho, Conn: 2}
	k3 := wire.FlowKey{Src: wire.MustAddr("fd00::3"), Service: wire.SvcEcho, Conn: 3}
	k4 := wire.FlowKey{Src: wire.MustAddr("fd00::4"), Service: wire.SvcEcho, Conn: 4}

	c.Add(k1, Action{Forward: []wire.Addr{hop1}})
	c.Add(k2, Action{Forward: []wire.Addr{hop2}})
	c.Add(k3, Action{Forward: []wire.Addr{hop2, hop1}}) // multi-dest, matches too
	c.Add(k4, Action{Drop: true})                       // no forward at all

	c.InvalidateDest(hop1)

	if _, ok := c.Lookup(k1); ok {
		t.Fatal("route through dead hop survived")
	}
	if _, ok := c.Lookup(k3); ok {
		t.Fatal("multi-dest route through dead hop survived")
	}
	if _, ok := c.Lookup(k2); !ok {
		t.Fatal("route through live hop was invalidated")
	}
	if _, ok := c.Lookup(k4); !ok {
		t.Fatal("non-forwarding entry was invalidated")
	}
}

func TestInvalidateDestAcrossShards(t *testing.T) {
	c := New(4096)
	hop := wire.MustAddr("fd00::a")
	alloc := 0
	next := func() wire.Addr {
		alloc++
		return wire.MustAddr("fd00::" + string(rune('1'+alloc%8)) + "00")
	}
	keys := make([]wire.FlowKey, 0, 256)
	for i := 0; i < 256; i++ {
		k := wire.FlowKey{Src: next(), Service: wire.SvcEcho, Conn: wire.ConnectionID(i)}
		keys = append(keys, k)
		c.Add(k, Action{Forward: []wire.Addr{hop}})
	}
	c.InvalidateDest(hop)
	for _, k := range keys {
		if _, ok := c.Lookup(k); ok {
			t.Fatalf("entry %v survived InvalidateDest", k)
		}
	}
}
