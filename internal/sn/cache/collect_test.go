package cache

import (
	"testing"
	"time"

	"interedge/internal/wire"
)

func TestCollectDest(t *testing.T) {
	c := NewSharded(64, 4)
	now := time.Unix(0, 0)
	c.SetNowFunc(func() time.Time { return now })
	hostA := wire.MustAddr("fd00::1:1")
	hostB := wire.MustAddr("fd00::1:2")

	keys := make([]wire.FlowKey, 6)
	for i := range keys {
		keys[i] = wire.FlowKey{Src: wire.MustAddr("fd00::2:1"), Service: wire.SvcIPFwd, Conn: wire.ConnectionID(i)}
		dst := hostA
		if i >= 4 {
			dst = hostB
		}
		now = now.Add(time.Second)
		c.Add(keys[i], Action{Forward: []wire.Addr{dst}})
	}

	got := c.CollectDest(hostA, 0)
	if len(got) != 4 {
		t.Fatalf("collected %d keys for hostA, want 4: %v", len(got), got)
	}
	seen := make(map[wire.FlowKey]bool)
	for _, k := range got {
		seen[k] = true
	}
	for i := 0; i < 4; i++ {
		if !seen[keys[i]] {
			t.Fatalf("missing key %v in %v", keys[i], got)
		}
	}
	if seen[keys[4]] || seen[keys[5]] {
		t.Fatalf("hostB keys leaked into hostA collection: %v", got)
	}

	if capped := c.CollectDest(hostA, 2); len(capped) != 2 {
		t.Fatalf("cap ignored: got %d keys, want 2", len(capped))
	}
	if none := c.CollectDest(wire.MustAddr("fd00::ff"), 0); len(none) != 0 {
		t.Fatalf("collected %d keys for unknown dest, want 0", len(none))
	}
}
