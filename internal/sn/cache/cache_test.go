package cache

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"interedge/internal/wire"
)

func key(i int) wire.FlowKey {
	return wire.FlowKey{
		Src:     wire.MustAddr(fmt.Sprintf("fd00::%x", i+1)),
		Service: wire.SvcNull,
		Conn:    wire.ConnectionID(i),
	}
}

func TestAddLookup(t *testing.T) {
	c := New(4)
	dst := wire.MustAddr("fd00::99")
	c.Add(key(1), Action{Forward: []wire.Addr{dst}})
	a, ok := c.Lookup(key(1))
	if !ok {
		t.Fatal("miss after add")
	}
	if len(a.Forward) != 1 || a.Forward[0] != dst {
		t.Fatalf("action = %+v", a)
	}
	if _, ok := c.Lookup(key(2)); ok {
		t.Fatal("hit for absent key")
	}
}

func TestReplaceExisting(t *testing.T) {
	c := New(4)
	c.Add(key(1), Action{Drop: true})
	c.Add(key(1), Action{Deliver: true})
	a, ok := c.Lookup(key(1))
	if !ok || a.Drop || !a.Deliver {
		t.Fatalf("action = %+v ok=%v", a, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestEvictionAtCapacity(t *testing.T) {
	c := New(4)
	for i := 0; i < 10; i++ {
		c.Add(key(i), Action{Drop: true})
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d, want 4", c.Len())
	}
	st := c.Snapshot()
	if st.Evictions != 6 {
		t.Fatalf("evictions = %d, want 6", st.Evictions)
	}
}

func TestClockPrefersUnreferenced(t *testing.T) {
	c := New(4)
	for i := 0; i < 4; i++ {
		c.Add(key(i), Action{Drop: true})
	}
	// Touch keys 0..2 so only key 3 has a cleared ref bit after one sweep.
	for i := 0; i < 3; i++ {
		c.Lookup(key(i))
	}
	c.Add(key(9), Action{Deliver: true})
	// key 3 should have been evicted in preference to the touched ones.
	if _, ok := c.Lookup(key(3)); ok {
		t.Fatal("recently-unused entry survived while referenced entries were candidates")
	}
	for i := 0; i < 3; i++ {
		if _, ok := c.Lookup(key(i)); !ok {
			t.Fatalf("referenced key %d evicted", i)
		}
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4)
	c.Add(key(1), Action{Drop: true})
	c.Invalidate(key(1))
	if _, ok := c.Lookup(key(1)); ok {
		t.Fatal("hit after invalidate")
	}
	// Invalidate of absent key is a no-op.
	c.Invalidate(key(2))
}

func TestInvalidateSource(t *testing.T) {
	c := New(8)
	src := wire.MustAddr("fd00::aa")
	for conn := 0; conn < 3; conn++ {
		c.Add(wire.FlowKey{Src: src, Service: wire.SvcNull, Conn: wire.ConnectionID(conn)}, Action{Drop: true})
	}
	c.Add(key(7), Action{Drop: true})
	c.InvalidateSource(src)
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
	if _, ok := c.Lookup(key(7)); !ok {
		t.Fatal("unrelated entry removed")
	}
}

func TestHitCount(t *testing.T) {
	c := New(4)
	c.Add(key(1), Action{Drop: true})
	if n, ok := c.HitCount(key(1)); !ok || n != 0 {
		t.Fatalf("initial hit count %d ok=%v", n, ok)
	}
	for i := 0; i < 5; i++ {
		c.Lookup(key(1))
	}
	if n, _ := c.HitCount(key(1)); n != 5 {
		t.Fatalf("hit count %d, want 5", n)
	}
	if _, ok := c.HitCount(key(2)); ok {
		t.Fatal("hit count for absent key")
	}
}

func TestRecentlyUsed(t *testing.T) {
	c := New(4)
	now := time.Unix(1000, 0)
	c.SetNowFunc(func() time.Time { return now })
	c.Add(key(1), Action{Drop: true})
	c.Lookup(key(1))
	if !c.RecentlyUsed(key(1), time.Minute) {
		t.Fatal("fresh entry not recently used")
	}
	now = now.Add(2 * time.Minute)
	if c.RecentlyUsed(key(1), time.Minute) {
		t.Fatal("stale entry reported recently used")
	}
	if c.RecentlyUsed(key(9), time.Minute) {
		t.Fatal("absent entry reported recently used")
	}
}

func TestDisableForcesMisses(t *testing.T) {
	c := New(4)
	c.Add(key(1), Action{Drop: true})
	c.SetEnabled(false)
	if _, ok := c.Lookup(key(1)); ok {
		t.Fatal("hit while disabled")
	}
	c.SetEnabled(true)
	if _, ok := c.Lookup(key(1)); !ok {
		t.Fatal("entry lost after re-enable")
	}
}

func TestStats(t *testing.T) {
	c := New(4)
	c.Add(key(1), Action{Drop: true})
	c.Lookup(key(1))
	c.Lookup(key(2))
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Inserts != 1 || st.Size != 1 || st.Capacity != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

// Property (App. B.1): arbitrary interleavings of adds, lookups, and
// invalidations never corrupt the cache — every lookup result matches the
// last action added for that key, size never exceeds capacity, and a
// shadow model disagreement only ever manifests as a miss (eviction),
// never as a wrong action.
func TestCacheShadowModelProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Dst  uint8
	}
	f := func(ops []op) bool {
		const capacity = 8
		c := New(capacity)
		shadow := map[wire.FlowKey]Action{}
		for _, o := range ops {
			k := key(int(o.Key % 32))
			switch o.Kind % 3 {
			case 0:
				a := Action{Forward: []wire.Addr{wire.MustAddr(fmt.Sprintf("fd00::f%x", o.Dst))}}
				c.Add(k, a)
				shadow[k] = a
			case 1:
				got, ok := c.Lookup(k)
				if ok {
					want, inShadow := shadow[k]
					if !inShadow {
						return false // hit for a never-added key
					}
					if len(got.Forward) != len(want.Forward) || got.Forward[0] != want.Forward[0] {
						return false // wrong action
					}
				}
			case 2:
				c.Invalidate(k)
				delete(shadow, k)
			}
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(1024)
	k := key(1)
	c.Add(k, Action{Forward: []wire.Addr{wire.MustAddr("fd00::9")}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Lookup(k); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkAddWithEviction(b *testing.B) {
	c := New(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(key(i%4096), Action{Drop: true})
	}
}
