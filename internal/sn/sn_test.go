package sn

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"interedge/internal/handshake"
	"interedge/internal/netsim"
	"interedge/internal/pipe"
	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// echoModule bounces every packet back to its sender with the payload
// reversed, and optionally installs a cache rule for the flow.
type echoModule struct {
	installRule bool
	calls       atomic.Uint64
	started     atomic.Bool
	stopped     atomic.Bool
}

func (m *echoModule) Service() wire.ServiceID { return wire.SvcEcho }
func (m *echoModule) Name() string            { return "echo" }
func (m *echoModule) Version() string         { return "1" }
func (m *echoModule) Start(env Env) error     { m.started.Store(true); return nil }
func (m *echoModule) Stop() error             { m.stopped.Store(true); return nil }

func (m *echoModule) HandlePacket(env Env, pkt *Packet) (Decision, error) {
	m.calls.Add(1)
	rev := make([]byte, len(pkt.Payload))
	for i, b := range pkt.Payload {
		rev[len(rev)-1-i] = b
	}
	d := Decision{Forwards: []Forward{{Dst: pkt.Src, Payload: rev}}}
	if m.installRule {
		d.Rules = append(d.Rules, Rule{
			Key:    pkt.Key(),
			Action: cache.Action{Forward: []wire.Addr{pkt.Src}},
		})
	}
	return d, nil
}

// failModule always errors.
type failModule struct{}

func (failModule) Service() wire.ServiceID { return wire.SvcNull }
func (failModule) Name() string            { return "fail" }
func (failModule) Version() string         { return "1" }
func (failModule) HandlePacket(Env, *Packet) (Decision, error) {
	return Decision{}, errors.New("boom")
}

// ctrlModule answers control ops.
type ctrlModule struct{}

func (ctrlModule) Service() wire.ServiceID { return wire.SvcQoS }
func (ctrlModule) Name() string            { return "ctrl" }
func (ctrlModule) Version() string         { return "1" }
func (ctrlModule) HandlePacket(Env, *Packet) (Decision, error) {
	return Decision{}, nil
}
func (ctrlModule) HandleControl(env Env, src wire.Addr, op string, args []byte) ([]byte, error) {
	if op == "ping" {
		return json.Marshal(map[string]string{"pong": string(args)})
	}
	return nil, fmt.Errorf("unknown op %q", op)
}

// client is a raw pipe endpoint playing the role of a host.
type client struct {
	mgr  *pipe.Manager
	addr wire.Addr
	rx   chan clientPkt
}

type clientPkt struct {
	src     wire.Addr
	hdr     wire.ILPHeader
	payload []byte
}

func newClient(t *testing.T, net *netsim.Network, addr string) *client {
	t.Helper()
	tr, err := net.Attach(wire.MustAddr(addr))
	if err != nil {
		t.Fatal(err)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	rx := make(chan clientPkt, 1024)
	mgr, err := pipe.New(pipe.Config{
		Transport: tr,
		Identity:  id,
		Handler: func(_ pipe.Sender, src wire.Addr, hdr wire.ILPHeader, _ []byte, payload []byte) {
			h := hdr
			h.Data = append([]byte(nil), hdr.Data...)
			rx <- clientPkt{src: src, hdr: h, payload: append([]byte(nil), payload...)}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	return &client{mgr: mgr, addr: wire.MustAddr(addr), rx: rx}
}

func newTestSN(t *testing.T, net *netsim.Network, addr string, cfgEdit ...func(*Config)) *SN {
	t.Helper()
	tr, err := net.Attach(wire.MustAddr(addr))
	if err != nil {
		t.Fatal(err)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Transport: tr, Identity: id}
	for _, e := range cfgEdit {
		e(&cfg)
	}
	node, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	return node
}

func (c *client) await(t *testing.T) clientPkt {
	t.Helper()
	select {
	case p := <-c.rx:
		return p
	case <-time.After(3 * time.Second):
		t.Fatal("timeout awaiting packet")
		return clientPkt{}
	}
}

func testSlowPathRoundTrip(t *testing.T, transport Transport, useEnclave bool) {
	t.Helper()
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5")
	mod := &echoModule{}
	opts := []ModuleOption{WithTransport(transport)}
	if useEnclave {
		opts = append(opts, WithEnclave())
	}
	if err := node.Register(mod, opts...); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, net, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 1, Data: []byte("meta")}
	if err := cl.mgr.Send(node.Addr(), &hdr, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got := cl.await(t)
	if string(got.payload) != "cba" {
		t.Fatalf("payload %q, want %q", got.payload, "cba")
	}
	if got.hdr.Service != wire.SvcEcho || got.hdr.Conn != 1 || string(got.hdr.Data) != "meta" {
		t.Fatalf("header %+v", got.hdr)
	}
	if mod.calls.Load() != 1 {
		t.Fatalf("module calls = %d", mod.calls.Load())
	}
}

func TestSlowPathChan(t *testing.T)    { testSlowPathRoundTrip(t, TransportChan, false) }
func TestSlowPathDirect(t *testing.T)  { testSlowPathRoundTrip(t, TransportDirect, false) }
func TestSlowPathIPC(t *testing.T)     { testSlowPathRoundTrip(t, TransportIPC, false) }
func TestSlowPathEnclave(t *testing.T) { testSlowPathRoundTrip(t, TransportChan, true) }
func TestSlowPathIPCEnclave(t *testing.T) {
	testSlowPathRoundTrip(t, TransportIPC, true)
}

// TestFigure2PipelineEquivalence pins the Figure 2 invariant: once a module
// installs a decision-cache rule, the fast path must make the same
// forwarding decision the slow path made, with the module no longer
// consulted.
func TestFigure2PipelineEquivalence(t *testing.T) {
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5")
	mod := &echoModule{installRule: true}
	if err := node.Register(mod); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, net, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 9}
	// First packet: slow path, installs rule, echoes reversed payload.
	if err := cl.mgr.Send(node.Addr(), &hdr, []byte("xy")); err != nil {
		t.Fatal(err)
	}
	first := cl.await(t)
	if string(first.payload) != "yx" {
		t.Fatalf("slow path payload %q", first.payload)
	}
	// Subsequent packets: fast path forwards (unmodified) to the same
	// destination without invoking the module.
	for i := 0; i < 5; i++ {
		if err := cl.mgr.Send(node.Addr(), &hdr, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		got := cl.await(t)
		if len(got.payload) != 1 || got.payload[0] != byte(i) {
			t.Fatalf("fast path payload %v", got.payload)
		}
	}
	if mod.calls.Load() != 1 {
		t.Fatalf("module invoked %d times, want 1 (cache must serve the rest)", mod.calls.Load())
	}
	c := node.Counters()
	if c.FastPathHits != 5 {
		t.Fatalf("FastPathHits = %d, want 5", c.FastPathHits)
	}
	if c.SlowPathSent != 1 {
		t.Fatalf("SlowPathSent = %d, want 1", c.SlowPathSent)
	}
}

func TestNoModuleDrops(t *testing.T) {
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5")
	cl := newClient(t, net, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	hdr := wire.ILPHeader{Service: wire.SvcMixnet, Conn: 1}
	if err := cl.mgr.Send(node.Addr(), &hdr, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return node.Counters().NoModuleDrops == 1 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestModuleErrorCounted(t *testing.T) {
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5")
	if err := node.Register(failModule{}); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, net, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return node.Counters().ModuleErrors == 1 })
}

func TestDuplicateRegistrationRejected(t *testing.T) {
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5")
	if err := node.Register(&echoModule{}); err != nil {
		t.Fatal(err)
	}
	if err := node.Register(&echoModule{}); err == nil {
		t.Fatal("duplicate registration succeeded")
	}
}

func TestStarterStopperLifecycle(t *testing.T) {
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5")
	mod := &echoModule{}
	if err := node.Register(mod); err != nil {
		t.Fatal(err)
	}
	if !mod.started.Load() {
		t.Fatal("Start not called")
	}
	node.Close()
	if !mod.stopped.Load() {
		t.Fatal("Stop not called")
	}
}

func TestDropRuleOnFastPath(t *testing.T) {
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5")
	cl := newClient(t, net, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	key := wire.FlowKey{Src: cl.addr, Service: wire.SvcNull, Conn: 4}
	node.Cache().Add(key, cache.Action{Drop: true})
	for i := 0; i < 3; i++ {
		if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcNull, Conn: 4}, nil); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return node.Counters().RuleDrops == 3 })
}

func TestDeliverRule(t *testing.T) {
	net := netsim.NewNetwork()
	var delivered atomic.Uint64
	node := newTestSN(t, net, "fd00::5", func(c *Config) {
		c.OnDeliver = func(pkt *Packet) { delivered.Add(1) }
	})
	cl := newClient(t, net, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	key := wire.FlowKey{Src: cl.addr, Service: wire.SvcNull, Conn: 4}
	node.Cache().Add(key, cache.Action{Deliver: true})
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcNull, Conn: 4}, []byte("up")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return delivered.Load() == 1 })
}

func TestMultiDestinationForwardRule(t *testing.T) {
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5")
	cl := newClient(t, net, "fd00::1")
	d1 := newClient(t, net, "fd00::2")
	d2 := newClient(t, net, "fd00::3")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	// The SN will auto-connect to d1/d2 when forwarding.
	key := wire.FlowKey{Src: cl.addr, Service: wire.SvcNull, Conn: 4}
	node.Cache().Add(key, cache.Action{Forward: []wire.Addr{d1.addr, d2.addr}})
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcNull, Conn: 4}, []byte("copy")); err != nil {
		t.Fatal(err)
	}
	got1, got2 := d1.await(t), d2.await(t)
	if string(got1.payload) != "copy" || string(got2.payload) != "copy" {
		t.Fatalf("payloads %q %q", got1.payload, got2.payload)
	}
	if c := node.Counters(); c.Forwarded != 2 {
		t.Fatalf("Forwarded = %d, want 2", c.Forwarded)
	}
}

func TestControlProtocol(t *testing.T) {
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5")
	if err := node.Register(ctrlModule{}); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, net, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	req, _ := json.Marshal(ControlRequest{Target: wire.SvcQoS, Op: "ping", Args: json.RawMessage(`"hi"`)})
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcControl, Conn: 42}, req); err != nil {
		t.Fatal(err)
	}
	got := cl.await(t)
	if got.hdr.Service != wire.SvcControl || got.hdr.Conn != 42 {
		t.Fatalf("reply header %+v", got.hdr)
	}
	var resp ControlResponse
	if err := json.Unmarshal(got.payload, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK || string(resp.Data) != `{"pong":"\"hi\""}` {
		t.Fatalf("resp %+v data=%s", resp, resp.Data)
	}
}

func TestControlUnknownServiceErrors(t *testing.T) {
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5")
	cl := newClient(t, net, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	req, _ := json.Marshal(ControlRequest{Target: wire.SvcVPN, Op: "x"})
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcControl, Conn: 1}, req); err != nil {
		t.Fatal(err)
	}
	got := cl.await(t)
	var resp ControlResponse
	if err := json.Unmarshal(got.payload, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.OK || resp.Error == "" {
		t.Fatalf("resp %+v", resp)
	}
}

func TestEnvConfigAndCheckpoint(t *testing.T) {
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5")
	env := &snEnv{sn: node, module: "m1", service: wire.SvcNull}
	env2 := &snEnv{sn: node, module: "m2", service: wire.SvcEcho}

	env.SetConfig("k", []byte("v1"))
	if v, ok := env.Config("k"); !ok || string(v) != "v1" {
		t.Fatalf("config %q %v", v, ok)
	}
	if _, ok := env2.Config("k"); ok {
		t.Fatal("config leaked across module namespaces")
	}
	env.Checkpoint("state", []byte("snapshot"))
	if v, ok := env.Restore("state"); !ok || string(v) != "snapshot" {
		t.Fatalf("restore %q %v", v, ok)
	}
	if _, ok := env2.Restore("state"); ok {
		t.Fatal("checkpoint leaked across module namespaces")
	}
}

func TestEnclaveMeasurementInTPM(t *testing.T) {
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5")
	if err := node.Register(&echoModule{}, WithEnclave()); err != nil {
		t.Fatal(err)
	}
	encl, ok := node.ModuleEnclave(wire.SvcEcho)
	if !ok {
		t.Fatal("no enclave for enclave-registered module")
	}
	quote, err := encl.Attest([]byte("nonce"))
	if err != nil {
		t.Fatal(err)
	}
	if len(quote.Sig) == 0 {
		t.Fatal("empty quote signature")
	}
}

func TestSlowPathQueueOverflow(t *testing.T) {
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5")
	block := make(chan struct{})
	mod := &blockingModule{block: block}
	if err := node.Register(mod, WithQueueDepth(2)); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, net, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcNull, Conn: wire.ConnectionID(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		c := node.Counters()
		return c.SlowPathDrops > 0 && c.RxPackets == 10
	})
	close(block)
}

type blockingModule struct{ block chan struct{} }

func (m *blockingModule) Service() wire.ServiceID { return wire.SvcNull }
func (m *blockingModule) Name() string            { return "blocking" }
func (m *blockingModule) Version() string         { return "1" }
func (m *blockingModule) HandlePacket(Env, *Packet) (Decision, error) {
	<-m.block
	return Decision{}, nil
}
