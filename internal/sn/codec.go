package sn

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"interedge/internal/wire"
)

// Binary codec for Packet and Decision. Used on module transports that
// move bytes across a boundary: the Unix-socket IPC transport (the paper
// prototype's configuration) and the enclave boundary (where data is
// re-encrypted by the memory controller). The in-process and channel
// transports pass pointers and skip the codec entirely.

func putAddr(buf []byte, a wire.Addr) {
	b := a.As16()
	copy(buf, b[:])
}

func getAddr(buf []byte) wire.Addr {
	var b [16]byte
	copy(b[:], buf)
	return netip.AddrFrom16(b).Unmap()
}

// encodePacket appends pkt's encoding to dst.
func encodePacket(dst []byte, pkt *Packet) ([]byte, error) {
	hdrLen := pkt.Hdr.EncodedSize()
	start := len(dst)
	dst = append(dst, make([]byte, 16+2+hdrLen+4+len(pkt.Payload))...)
	buf := dst[start:]
	putAddr(buf[0:16], pkt.Src)
	binary.BigEndian.PutUint16(buf[16:18], uint16(hdrLen))
	if _, err := pkt.Hdr.SerializeTo(buf[18 : 18+hdrLen]); err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(buf[18+hdrLen:22+hdrLen], uint32(len(pkt.Payload)))
	copy(buf[22+hdrLen:], pkt.Payload)
	return dst, nil
}

// decodePacket parses a packet encoding. The decoded fields alias data.
func decodePacket(data []byte) (*Packet, error) {
	if len(data) < 22 {
		return nil, wire.ErrTruncated
	}
	pkt := &Packet{Src: getAddr(data[0:16])}
	hdrLen := int(binary.BigEndian.Uint16(data[16:18]))
	if len(data) < 18+hdrLen+4 {
		return nil, wire.ErrTruncated
	}
	if _, err := pkt.Hdr.DecodeFromBytes(data[18 : 18+hdrLen]); err != nil {
		return nil, err
	}
	plen := int(binary.BigEndian.Uint32(data[18+hdrLen : 22+hdrLen]))
	if len(data) < 22+hdrLen+plen {
		return nil, wire.ErrTruncated
	}
	pkt.Payload = data[22+hdrLen : 22+hdrLen+plen]
	return pkt, nil
}

func appendUint16(dst []byte, v uint16) []byte {
	return append(dst, byte(v>>8), byte(v))
}

func appendUint32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendUint64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendAddr(dst []byte, a wire.Addr) []byte {
	b := a.As16()
	return append(dst, b[:]...)
}

func appendBytes32(dst []byte, b []byte) []byte {
	dst = appendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

func appendFlowKey(dst []byte, k wire.FlowKey) []byte {
	dst = appendAddr(dst, k.Src)
	dst = appendUint32(dst, uint32(k.Service))
	return appendUint64(dst, uint64(k.Conn))
}

type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = wire.ErrTruncated
	}
}

func (r *reader) uint8() uint8 {
	if r.err != nil || r.off+1 > len(r.data) {
		r.fail()
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *reader) uint16() uint16 {
	if r.err != nil || r.off+2 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.data[r.off:])
	r.off += 2
	return v
}

func (r *reader) uint32() uint32 {
	if r.err != nil || r.off+4 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *reader) uint64() uint64 {
	if r.err != nil || r.off+8 > len(r.data) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *reader) addr() wire.Addr {
	if r.err != nil || r.off+16 > len(r.data) {
		r.fail()
		return wire.Addr{}
	}
	a := getAddr(r.data[r.off:])
	r.off += 16
	return a
}

func (r *reader) bytes32() []byte {
	n := int(r.uint32())
	if r.err != nil || r.off+n > len(r.data) {
		r.fail()
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) flowKey() wire.FlowKey {
	return wire.FlowKey{
		Src:     r.addr(),
		Service: wire.ServiceID(r.uint32()),
		Conn:    wire.ConnectionID(r.uint64()),
	}
}

// encodeDecision appends d's encoding to dst.
func encodeDecision(dst []byte, d *Decision) ([]byte, error) {
	dst = appendUint16(dst, uint16(len(d.Forwards)))
	for i := range d.Forwards {
		f := &d.Forwards[i]
		dst = appendAddr(dst, f.Dst)
		var flags byte
		if f.Hdr != nil {
			flags |= 1
		}
		if f.Payload != nil {
			flags |= 2
		}
		if f.Empty {
			flags |= 4
		}
		dst = append(dst, flags)
		if f.Hdr != nil {
			enc, err := f.Hdr.Encode()
			if err != nil {
				return nil, err
			}
			dst = appendUint16(dst, uint16(len(enc)))
			dst = append(dst, enc...)
		}
		if f.Payload != nil {
			dst = appendBytes32(dst, f.Payload)
		}
	}
	dst = appendUint16(dst, uint16(len(d.Rules)))
	for i := range d.Rules {
		r := &d.Rules[i]
		dst = appendFlowKey(dst, r.Key)
		var flags byte
		if r.Action.Drop {
			flags |= 1
		}
		if r.Action.Deliver {
			flags |= 2
		}
		if r.Action.RewriteHeader != nil {
			flags |= 4
		}
		dst = append(dst, flags)
		dst = appendUint16(dst, uint16(len(r.Action.Forward)))
		for _, a := range r.Action.Forward {
			dst = appendAddr(dst, a)
		}
		if r.Action.RewriteHeader != nil {
			dst = appendBytes32(dst, r.Action.RewriteHeader)
		}
	}
	dst = appendUint16(dst, uint16(len(d.Invalidate)))
	for _, k := range d.Invalidate {
		dst = appendFlowKey(dst, k)
	}
	return dst, nil
}

// decodeDecision parses a decision encoding. Byte-slice fields are copied
// so the result outlives data.
func decodeDecision(data []byte) (*Decision, error) {
	r := &reader{data: data}
	d := &Decision{}
	nf := int(r.uint16())
	for i := 0; i < nf && r.err == nil; i++ {
		var f Forward
		f.Dst = r.addr()
		flags := r.uint8()
		if flags&1 != 0 {
			hlen := int(r.uint16())
			if r.err != nil || r.off+hlen > len(r.data) {
				r.fail()
				break
			}
			var hdr wire.ILPHeader
			if _, err := hdr.DecodeFromBytes(r.data[r.off : r.off+hlen]); err != nil {
				return nil, err
			}
			hdr.Data = append([]byte(nil), hdr.Data...)
			f.Hdr = &hdr
			r.off += hlen
		}
		if flags&2 != 0 {
			f.Payload = append([]byte(nil), r.bytes32()...)
		}
		f.Empty = flags&4 != 0
		d.Forwards = append(d.Forwards, f)
	}
	nr := int(r.uint16())
	for i := 0; i < nr && r.err == nil; i++ {
		var rule Rule
		rule.Key = r.flowKey()
		flags := r.uint8()
		rule.Action.Drop = flags&1 != 0
		rule.Action.Deliver = flags&2 != 0
		nfwd := int(r.uint16())
		for j := 0; j < nfwd && r.err == nil; j++ {
			rule.Action.Forward = append(rule.Action.Forward, r.addr())
		}
		if flags&4 != 0 {
			rule.Action.RewriteHeader = append([]byte(nil), r.bytes32()...)
		}
		d.Rules = append(d.Rules, rule)
	}
	ni := int(r.uint16())
	for i := 0; i < ni && r.err == nil; i++ {
		d.Invalidate = append(d.Invalidate, r.flowKey())
	}
	if r.err != nil {
		return nil, fmt.Errorf("sn: decode decision: %w", r.err)
	}
	return d, nil
}
