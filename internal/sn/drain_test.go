package sn

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"interedge/internal/handshake"
	"interedge/internal/host"
	"interedge/internal/netsim"
	"interedge/internal/pipe"
	"interedge/internal/wire"
)

// newTestHost builds a full host stack (not the raw pipe client) so drain
// tests exercise the SvcPipeMove handling end to end.
func newTestHost(t *testing.T, net *netsim.Network, addr string, firstHop wire.Addr) *host.Host {
	t.Helper()
	tr, err := net.Attach(wire.MustAddr(addr))
	if err != nil {
		t.Fatal(err)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	h, err := host.New(host.Config{
		Transport: tr,
		Identity:  id,
		FirstHops: []wire.Addr{firstHop},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

// acceptOnly returns an AcceptHandoff policy admitting exactly the given
// sibling addresses.
func acceptOnly(sibs ...string) func(src wire.Addr) bool {
	set := make(map[wire.Addr]bool, len(sibs))
	for _, s := range sibs {
		set[wire.MustAddr(s)] = true
	}
	return func(src wire.Addr) bool { return set[src] }
}

// TestDrainHandsOffPipeEndToEnd drains one host pipe from snA to snB and
// checks the full contract: the host rebinds without a re-handshake (the
// pipe keeps the identity verified against snA), the warmth hints keep the
// flow on snB's fast path even though snB has no service module, and snA
// retains no state for the host.
func TestDrainHandsOffPipeEndToEnd(t *testing.T) {
	net := netsim.NewNetwork()
	snA := newTestSN(t, net, "fd00::a:1", func(c *Config) { c.AcceptHandoff = acceptOnly("fd00::a:2") })
	snB := newTestSN(t, net, "fd00::a:2", func(c *Config) { c.AcceptHandoff = acceptOnly("fd00::a:1") })
	if err := snA.Register(&echoModule{installRule: true}); err != nil {
		t.Fatal(err)
	}
	h := newTestHost(t, net, "fd00::beef:1", snA.Addr())

	conn, err := h.NewConn(wire.SvcEcho)
	if err != nil {
		t.Fatal(err)
	}
	// First packet takes the slow path (echo reverses) and installs the
	// forward-to-host rule; the second proves the fast path is warm.
	if err := conn.Send(nil, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	awaitConn(t, conn, []byte("cba"))
	if err := conn.Send(nil, []byte("warm")); err != nil {
		t.Fatal(err)
	}
	awaitConn(t, conn, []byte("warm"))

	idA, ok := h.SNIdentity(snA.Addr())
	if !ok {
		t.Fatal("host has no identity for snA")
	}

	if err := snA.HandoffPipe(h.Addr(), snB.Addr()); err != nil {
		t.Fatalf("HandoffPipe: %v", err)
	}

	// The move notice travels the sealed pipe asynchronously.
	deadline := time.Now().Add(3 * time.Second)
	for {
		fh, err := h.FirstHop()
		if err == nil && fh == snB.Addr() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("host never rebound: first hop %v, err %v", fh, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if via := conn.Via(); via != snB.Addr() {
		t.Fatalf("pinned connection not repointed: via %s", via)
	}
	// No re-handshake: the rebound pipe still carries the identity the host
	// verified against the exporter.
	if idB, ok := h.SNIdentity(snB.Addr()); !ok || !bytes.Equal(idA, idB) {
		t.Fatalf("rebound pipe identity changed (ok=%v)", ok)
	}
	if got := snB.Telemetry().Counter("sn_handoff_pipes_total").Load(); got != 1 {
		t.Fatalf("sn_handoff_pipes_total = %d, want 1", got)
	}
	if _, err := snA.Pipes().ExportPeer(h.Addr()); !errors.Is(err, pipe.ErrNoPipe) {
		t.Fatalf("snA still holds the host pipe: %v", err)
	}

	// snB has no echo module: only the migrated warmth rule can serve this —
	// the flow stays on the fast path across the handoff.
	if err := conn.Send(nil, []byte("moved")); err != nil {
		t.Fatal(err)
	}
	awaitConn(t, conn, []byte("moved"))
	if hits := snB.Telemetry().Counter("sn_fastpath_hits_total").Load(); hits == 0 {
		t.Fatal("post-handoff packet did not hit snB's fast path")
	}
}

// TestDrainAbortsWhenTargetDead is the chaos case: the drain target is
// unreachable, so the handoff fails, the drain reports aborted, and the
// affected host falls back to a full re-establishment — each packet
// delivered exactly once afterwards.
func TestDrainAbortsWhenTargetDead(t *testing.T) {
	net := netsim.NewNetwork()
	snA := newTestSN(t, net, "fd00::a:1", func(c *Config) {
		c.HandshakeTimeout = 50 * time.Millisecond
		c.HandshakeRetries = 1
	})
	if err := snA.Register(&echoModule{installRule: true}); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, net, "fd00::beef:1")
	if err := cl.mgr.Connect(snA.Addr()); err != nil {
		t.Fatal(err)
	}

	dead := wire.MustAddr("fd00::a:dead")
	err := snA.Drain(func(peer wire.Addr) (wire.Addr, bool) { return dead, peer == cl.addr })
	if err == nil {
		t.Fatal("drain to a dead target reported success")
	}
	tl := snA.Telemetry()
	if got := tl.Counter("sn_drain_started_total").Load(); got != 1 {
		t.Fatalf("sn_drain_started_total = %d, want 1", got)
	}
	if got := tl.Counter("sn_drain_aborted_total").Load(); got != 1 {
		t.Fatalf("sn_drain_aborted_total = %d, want 1", got)
	}
	if got := tl.Counter("sn_drain_completed_total").Load(); got != 0 {
		t.Fatalf("sn_drain_completed_total = %d, want 0", got)
	}
	if _, err := snA.Pipes().ExportPeer(cl.addr); !errors.Is(err, pipe.ErrNoPipe) {
		t.Fatalf("aborted drain left the host pipe in place: %v", err)
	}

	// Fallback: full re-establishment (a redial, since the host's stale
	// pipe state must be discarded too), then exactly-once delivery.
	if err := cl.mgr.Redial(snA.Addr()); err != nil {
		t.Fatalf("re-establishment after aborted drain: %v", err)
	}
	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 7}
	if err := cl.mgr.Send(snA.Addr(), &hdr, []byte("once")); err != nil {
		t.Fatal(err)
	}
	first := cl.await(t)
	if string(first.payload) != "ecno" { // echo reverses "once"
		t.Fatalf("unexpected echo payload %q", first.payload)
	}
	select {
	case dup := <-cl.rx:
		t.Fatalf("double delivery after fallback: %q", dup.payload)
	case <-time.After(200 * time.Millisecond):
	}
}

// TestDrainMidHandshakeSingleKeyEpoch is the seeded property: when a
// handoff import races a full handshake for the same host at the target,
// the pipe converges to exactly one live key schedule — whichever path
// loses changes nothing — and traffic flows afterwards. Three substrate
// seeds vary the interleaving.
func TestDrainMidHandshakeSingleKeyEpoch(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run("", func(t *testing.T) {
			net := netsim.NewNetwork(netsim.WithSeed(seed))
			snA := newTestSN(t, net, "fd00::a:1")
			snB := newTestSN(t, net, "fd00::a:2", func(c *Config) { c.AcceptHandoff = acceptOnly("fd00::a:1") })
			if err := snB.Register(&echoModule{}); err != nil {
				t.Fatal(err)
			}
			cl := newClient(t, net, "fd00::beef:1")
			if err := cl.mgr.Connect(snA.Addr()); err != nil {
				t.Fatal(err)
			}
			state, err := snA.Pipes().ExportPeer(cl.addr)
			if err != nil {
				t.Fatal(err)
			}

			// Race the import (drain path) against a full handshake (the
			// host re-established on its own, e.g. a retransmitted msg1
			// still in flight).
			importDone := make(chan error, 1)
			dialDone := make(chan error, 1)
			go func() { importDone <- snB.Pipes().ImportPeer(state) }()
			go func() { dialDone <- cl.mgr.Connect(snB.Addr()) }()
			impErr := <-importDone
			if err := <-dialDone; err != nil {
				t.Fatalf("seed %d: host handshake failed: %v", seed, err)
			}
			if impErr != nil && !errors.Is(impErr, pipe.ErrPeerExists) {
				t.Fatalf("seed %d: import failed: %v", seed, impErr)
			}

			// Exactly one peer entry per side for this pipe.
			var n int
			for _, p := range snB.Pipes().Peers() {
				if p.Addr == cl.addr {
					n++
				}
			}
			if n != 1 {
				t.Fatalf("seed %d: snB holds %d peer entries for the host", seed, n)
			}

			// The surviving schedule must carry traffic both ways.
			hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 3}
			if err := cl.mgr.Send(snB.Addr(), &hdr, []byte("live")); err != nil {
				t.Fatalf("seed %d: send: %v", seed, err)
			}
			got := cl.await(t)
			if string(got.payload) != "evil" {
				t.Fatalf("seed %d: echo reply %q, want %q", seed, got.payload, "evil")
			}
		})
	}
}

// awaitConn waits for one message on a host connection and checks its
// payload.
func awaitConn(t *testing.T, c *host.Conn, want []byte) {
	t.Helper()
	select {
	case msg := <-c.Receive():
		if !bytes.Equal(msg.Payload, want) {
			t.Fatalf("payload %q, want %q", msg.Payload, want)
		}
	case <-time.After(3 * time.Second):
		t.Fatalf("timeout awaiting %q", want)
	}
}
