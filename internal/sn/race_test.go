//go:build race

package sn

// raceEnabled reports whether the race detector is active; its runtime
// changes sync.Pool retention and allocation counts, so the alloc-budget
// assertions are skipped under -race.
const raceEnabled = true
