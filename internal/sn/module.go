// Package sn implements the InterEdge service node (§3): the pipe-terminus
// fast path with its decision cache, the slow path of service modules
// running in the common execution environment, and the supporting
// primitives (configuration, checkpointing, logging) that make service
// modules Write-Once-Run-Anywhere.
package sn

import (
	"crypto/ed25519"
	"time"

	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// Packet is one inbound ILP packet as seen by a service module: the L3
// source plus the decrypted ILP header and opaque payload (§4: the module
// receives "the packet's L3 header and decrypted ILP header").
type Packet struct {
	Src     wire.Addr
	Hdr     wire.ILPHeader
	Payload []byte
}

// Key returns the packet's decision-cache key.
func (p *Packet) Key() wire.FlowKey {
	return wire.FlowKey{Src: p.Src, Service: p.Hdr.Service, Conn: p.Hdr.Conn}
}

// Forward is one forwarding instruction in a Decision.
type Forward struct {
	// Dst is the next hop (an SN or host pipe peer).
	Dst wire.Addr
	// Hdr, if non-nil, replaces the packet's ILP header on this copy;
	// nil forwards the original header unchanged.
	Hdr *wire.ILPHeader
	// Payload, if non-nil, replaces the packet's payload on this copy;
	// nil forwards the original payload. Use Empty to send no payload.
	Payload []byte
	// Empty forces an empty payload even though Payload is nil.
	Empty bool
}

// Rule is a decision-cache installation request.
type Rule struct {
	Key    wire.FlowKey
	Action cache.Action
}

// Decision is a service module's verdict on one packet: where copies go,
// and which cache rules to install or remove ("Either the decision cache
// or the service provides the pipe-terminus with a (possibly empty) list
// of forwarding destinations", §4).
type Decision struct {
	Forwards   []Forward
	Rules      []Rule
	Invalidate []wire.FlowKey
}

// Module is a standardized InterEdge service module. Modules are written
// against Env — the common execution environment — and must not reach
// around it, which is what makes them deployable on any SN (§3.1 WORA).
type Module interface {
	// Service returns the module's standardized service ID.
	Service() wire.ServiceID
	// Name returns the module's human-readable name.
	Name() string
	// Version returns the implementation version (part of the enclave
	// measurement).
	Version() string
	// HandlePacket processes one packet on the slow path. The packet's
	// Hdr.Data and Payload alias runtime buffers; copy anything retained.
	HandlePacket(env Env, pkt *Packet) (Decision, error)
}

// Starter is implemented by modules needing startup work (e.g. restoring
// checkpoints, starting timers) when registered on an SN.
type Starter interface {
	Start(env Env) error
}

// Stopper is implemented by modules needing teardown on SN close.
type Stopper interface {
	Stop() error
}

// Env is the InterEdge-provided API available to service modules: the
// "few basic primitives (such as sending and receiving packets over ILP,
// reading and updating configuration, and checkpointing state for fault
// tolerance)" of §3.1, plus the decision-cache API of Appendix B.
type Env interface {
	// LocalAddr returns this SN's address.
	LocalAddr() wire.Addr
	// Now returns the current time from the SN's clock.
	Now() time.Time
	// After schedules a timer on the SN's clock.
	After(d time.Duration) <-chan time.Time

	// Send transmits an ILP packet to dst over an established pipe,
	// establishing one first if needed.
	Send(dst wire.Addr, hdr *wire.ILPHeader, payload []byte) error
	// Inject re-enters a packet into the pipe-terminus as if it had
	// just arrived from src — the asynchronous-requeue primitive: a
	// module that parked a packet pending slow external work (e.g. a
	// cold resolution fill) re-injects it once the result is in. Safe
	// to call from any goroutine; hdr and payload must not alias
	// runtime buffers the caller does not own.
	Inject(src wire.Addr, hdr wire.ILPHeader, payload []byte)
	// Connect ensures a pipe to dst exists.
	Connect(dst wire.Addr) error
	// PeerIdentity returns the verified identity of an established pipe
	// peer (hosts prove their identity during the pipe handshake, so
	// services can validate signed join messages against it, §6.2).
	PeerIdentity(addr wire.Addr) (ed25519.PublicKey, bool)

	// AddRule installs a decision-cache entry.
	AddRule(key wire.FlowKey, action cache.Action)
	// InvalidateRule removes a decision-cache entry.
	InvalidateRule(key wire.FlowKey)
	// RuleHitCount returns an entry's hit counter (Appendix B.2).
	RuleHitCount(key wire.FlowKey) (uint64, bool)
	// RuleRecentlyUsed reports whether an entry was hit within window.
	RuleRecentlyUsed(key wire.FlowKey, window time.Duration) bool

	// Config reads a key from the module's configuration namespace.
	Config(key string) ([]byte, bool)
	// SetConfig updates a key in the module's configuration namespace.
	SetConfig(key string, value []byte)

	// Checkpoint durably stores module state for fault tolerance.
	Checkpoint(key string, data []byte)
	// Restore retrieves checkpointed state.
	Restore(key string) ([]byte, bool)

	// Logf emits a log line tagged with the SN and module.
	Logf(format string, args ...any)
}
