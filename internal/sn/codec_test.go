package sn

import (
	"bytes"
	"testing"
	"testing/quick"

	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

func TestPacketCodecRoundTrip(t *testing.T) {
	pkt := &Packet{
		Src:     wire.MustAddr("fd00::1"),
		Hdr:     wire.ILPHeader{Service: wire.SvcPubSub, Conn: 77, Data: []byte("topic")},
		Payload: []byte("payload bytes"),
	}
	enc, err := encodePacket(nil, pkt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodePacket(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != pkt.Src || got.Hdr.Service != pkt.Hdr.Service || got.Hdr.Conn != pkt.Hdr.Conn ||
		!bytes.Equal(got.Hdr.Data, pkt.Hdr.Data) || !bytes.Equal(got.Payload, pkt.Payload) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
}

func TestPacketCodecEmpty(t *testing.T) {
	pkt := &Packet{Src: wire.MustAddr("fd00::2"), Hdr: wire.ILPHeader{Service: wire.SvcNull, Conn: 1}}
	enc, err := encodePacket(nil, pkt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodePacket(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Payload) != 0 || len(got.Hdr.Data) != 0 {
		t.Fatalf("expected empty fields: %+v", got)
	}
}

func TestPacketCodecTruncated(t *testing.T) {
	pkt := &Packet{Src: wire.MustAddr("fd00::1"), Hdr: wire.ILPHeader{Service: 1, Conn: 2, Data: []byte("d")}, Payload: []byte("p")}
	enc, _ := encodePacket(nil, pkt)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodePacket(enc[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(enc))
		}
	}
}

func decisionsEqual(a, b *Decision) bool {
	if len(a.Forwards) != len(b.Forwards) || len(a.Rules) != len(b.Rules) || len(a.Invalidate) != len(b.Invalidate) {
		return false
	}
	for i := range a.Forwards {
		fa, fb := a.Forwards[i], b.Forwards[i]
		if fa.Dst != fb.Dst || fa.Empty != fb.Empty || !bytes.Equal(fa.Payload, fb.Payload) {
			return false
		}
		if (fa.Hdr == nil) != (fb.Hdr == nil) {
			return false
		}
		if fa.Hdr != nil {
			if fa.Hdr.Service != fb.Hdr.Service || fa.Hdr.Conn != fb.Hdr.Conn || !bytes.Equal(fa.Hdr.Data, fb.Hdr.Data) {
				return false
			}
		}
	}
	for i := range a.Rules {
		ra, rb := a.Rules[i], b.Rules[i]
		if ra.Key != rb.Key || ra.Action.Drop != rb.Action.Drop || ra.Action.Deliver != rb.Action.Deliver {
			return false
		}
		if len(ra.Action.Forward) != len(rb.Action.Forward) {
			return false
		}
		for j := range ra.Action.Forward {
			if ra.Action.Forward[j] != rb.Action.Forward[j] {
				return false
			}
		}
		if !bytes.Equal(ra.Action.RewriteHeader, rb.Action.RewriteHeader) {
			return false
		}
	}
	for i := range a.Invalidate {
		if a.Invalidate[i] != b.Invalidate[i] {
			return false
		}
	}
	return true
}

func TestDecisionCodecRoundTrip(t *testing.T) {
	d := &Decision{
		Forwards: []Forward{
			{Dst: wire.MustAddr("fd00::9")},
			{Dst: wire.MustAddr("fd00::a"), Hdr: &wire.ILPHeader{Service: wire.SvcEcho, Conn: 3, Data: []byte("x")}},
			{Dst: wire.MustAddr("fd00::b"), Payload: []byte("replaced")},
			{Dst: wire.MustAddr("fd00::c"), Empty: true},
		},
		Rules: []Rule{
			{
				Key: wire.FlowKey{Src: wire.MustAddr("fd00::1"), Service: wire.SvcNull, Conn: 5},
				Action: cache.Action{
					Forward:       []wire.Addr{wire.MustAddr("fd00::9"), wire.MustAddr("fd00::a")},
					Drop:          false,
					Deliver:       true,
					RewriteHeader: []byte{1, 2, 3},
				},
			},
			{
				Key:    wire.FlowKey{Src: wire.MustAddr("fd00::2"), Service: wire.SvcDDoS, Conn: 6},
				Action: cache.Action{Drop: true},
			},
		},
		Invalidate: []wire.FlowKey{
			{Src: wire.MustAddr("fd00::3"), Service: wire.SvcQoS, Conn: 7},
		},
	}
	enc, err := encodeDecision(nil, d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeDecision(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !decisionsEqual(d, got) {
		t.Fatalf("roundtrip mismatch:\n%+v\n%+v", d, got)
	}
}

func TestDecisionCodecEmpty(t *testing.T) {
	enc, err := encodeDecision(nil, &Decision{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeDecision(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Forwards) != 0 || len(got.Rules) != 0 || len(got.Invalidate) != 0 {
		t.Fatalf("non-empty decode: %+v", got)
	}
}

func TestDecisionDecodeGarbageNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = decodeDecision(data)
		_, _ = decodePacket(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: packet codec roundtrips arbitrary contents.
func TestPacketCodecProperty(t *testing.T) {
	f := func(svc uint32, conn uint64, data, payload []byte) bool {
		if len(data) > wire.MaxServiceData {
			data = data[:wire.MaxServiceData]
		}
		pkt := &Packet{
			Src:     wire.MustAddr("fd00::ff"),
			Hdr:     wire.ILPHeader{Service: wire.ServiceID(svc), Conn: wire.ConnectionID(conn), Data: data},
			Payload: payload,
		}
		enc, err := encodePacket(nil, pkt)
		if err != nil {
			return false
		}
		got, err := decodePacket(enc)
		if err != nil {
			return false
		}
		return got.Hdr.Service == pkt.Hdr.Service && got.Hdr.Conn == pkt.Hdr.Conn &&
			bytes.Equal(got.Hdr.Data, data) && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
