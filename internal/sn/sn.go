package sn

import (
	"crypto/ed25519"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"interedge/internal/clock"
	"interedge/internal/enclave"
	"interedge/internal/handshake"
	"interedge/internal/netsim"
	"interedge/internal/pipe"
	"interedge/internal/sn/cache"
	"interedge/internal/telemetry"
	"interedge/internal/tpm"
	"interedge/internal/wire"
)

// Config configures a service node.
type Config struct {
	// Transport attaches the SN to the substrate. Required.
	Transport netsim.Transport
	// Identity is the SN's signing identity. Required.
	Identity handshake.Identity
	// Clock defaults to the real clock.
	Clock clock.Clock
	// CacheSize is the decision-cache capacity (default 65536 entries).
	CacheSize int
	// TPM is the node's TPM; created automatically when nil.
	TPM *tpm.TPM
	// Authorize filters pipe peers (default accept-all).
	Authorize pipe.AuthorizePeer
	// OnDeliver receives packets whose cached action is Deliver. Optional.
	OnDeliver func(pkt *Packet)
	// AutoConnect, when true (the default via NewConfig semantics: zero
	// value false means *disabled*; most callers want DisableAutoConnect
	// false), lets forwarding establish missing pipes on demand.
	DisableAutoConnect bool
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
	// EnclaveTerminus runs the pipe-terminus inside a simulated secure
	// enclave: every packet crosses the enclave boundary on entry. This
	// reproduces Appendix C's no-service-with-enclave configuration.
	EnclaveTerminus bool
	// RxWorkers is the number of parallel pipe-terminus workers inbound
	// datagrams are sharded onto by source address (default GOMAXPROCS;
	// see pipe.Config.RxWorkers).
	RxWorkers int
	// TxBatch caps the per-destination egress coalescing each terminus
	// worker applies to fast-path forwards (see pipe.Config.TxBatch): 0
	// selects the pipe default, 1 disables coalescing.
	TxBatch int
	// HandshakeTimeout/Retries tune pipe establishment (see pipe.Config).
	HandshakeTimeout time.Duration
	HandshakeRetries int
	// KeepaliveInterval enables pipe liveness probes with dead-peer
	// detection (see pipe.Config.KeepaliveInterval); 0 disables them.
	// When a peer dies, every decision-cache entry sourced from it or
	// forwarding to it is invalidated, and (unless DisableAutoConnect)
	// the pipe is re-established automatically with a fresh key epoch.
	KeepaliveInterval time.Duration
	// DeadAfter is the idle window before a peer is declared dead
	// (default 4×KeepaliveInterval).
	DeadAfter time.Duration
	// OnPeerDown is notified after dead-peer cache invalidation. Optional.
	OnPeerDown pipe.PeerDownHandler
	// AcceptHandoff authorizes inbound pipe handoffs (SvcHandoff): only
	// state arriving from an src it approves — in practice, a sibling SN of
	// the same edomain — is imported. Nil rejects all handoffs, so a node
	// never accepts migrated key material unless explicitly configured to.
	AcceptHandoff func(src wire.Addr) bool
	// RequeueDepth bounds the per-destination queue of forwarded packets
	// held while a pipe (re-)establishes instead of dropping them
	// (default 1024).
	RequeueDepth int
	// Telemetry homes every layer's instruments (SN, pipe, cache, module
	// dispatchers, and the transport if it implements
	// telemetry.Registrable) in an existing registry; nil creates a
	// per-node one, reachable via SN.Telemetry().
	Telemetry *telemetry.Registry
	// Trace, when non-nil, observes every packet crossing the
	// pipe-terminus (rx, fast/slow path, forward, deliver, drop). It runs
	// inline on the sharded rx workers; see telemetry.TraceHook for the
	// contract.
	Trace telemetry.TraceHook
}

// Counters aggregates SN data-path statistics. It is a legacy view over the
// node's sn_* telemetry instruments (see SN.Telemetry): each field is read
// atomically, but the struct is not one consistent cut across counters.
type Counters struct {
	RxPackets     uint64 // packets entering the pipe-terminus
	FastPathHits  uint64 // served entirely from the decision cache
	SlowPathSent  uint64 // dispatched to a service module
	SlowPathDrops uint64 // dropped: module queue full
	NoModuleDrops uint64 // dropped: no module for service ID
	RuleDrops     uint64 // dropped by a cached Drop action
	Forwarded     uint64 // copies forwarded to next hops
	Delivered     uint64 // packets handed to OnDeliver
	ForwardErrors uint64 // forwarding failures (no pipe, send error)
	ModuleErrors  uint64 // module invocations that failed (any cause)
	Requeued      uint64 // forwards held while a pipe (re-)establishes
	RequeueDrops  uint64 // forwards dropped: requeue bound reached
	PeersLost     uint64 // pipes torn down by dead-peer detection
	// Modules holds the per-module containment snapshot (queue drops,
	// errors, timeouts, panics, restarts, breaker state), sorted by
	// service ID.
	Modules []ModuleHealth
}

type registeredModule struct {
	mod      Module
	cfg      moduleConfig
	disp     *dispatcher
	env      *snEnv
	enclave  *enclave.Enclave
	ctrl     ControlHandler
	stopOnce sync.Once
}

// health snapshots the module's containment state.
func (reg *registeredModule) health() ModuleHealth {
	d := reg.disp
	state, consec, trips, recoveries := d.brk.snapshot()
	return ModuleHealth{
		Service:             reg.mod.Service(),
		Name:                reg.mod.Name(),
		Transport:           reg.cfg.transport.String(),
		State:               state.String(),
		ConsecutiveFailures: consec,
		Handled:             d.handled.Load(),
		Dropped:             d.dropped.Load(),
		Errored:             d.errored.Load(),
		Timeouts:            d.timeouts.Load(),
		Panics:              d.panics.Load(),
		Restarts:            d.restarts.Load(),
		BreakerTrips:        trips,
		BreakerRecoveries:   recoveries,
		Shed:                d.shed.Load(),
	}
}

// ControlHandler is implemented by modules that accept out-of-band control
// operations (§3.2's second invocation style: "services can be invoked by
// the host out of band (via a control protocol between the host and its
// first-hop SN)").
type ControlHandler interface {
	HandleControl(env Env, src wire.Addr, op string, args []byte) ([]byte, error)
}

// ControlRequest is the JSON envelope of a control-protocol request,
// carried as the payload of a SvcControl packet.
type ControlRequest struct {
	Target wire.ServiceID  `json:"target"`
	Op     string          `json:"op"`
	Args   json.RawMessage `json:"args,omitempty"`
}

// ControlResponse is the JSON envelope of a control-protocol response.
type ControlResponse struct {
	OK    bool            `json:"ok"`
	Error string          `json:"error,omitempty"`
	Data  json.RawMessage `json:"data,omitempty"`
}

// SN is one InterEdge service node.
type SN struct {
	cfg             Config
	mgr             *pipe.Manager
	cache           *cache.Cache
	tpm             *tpm.TPM
	terminusEnclave *enclave.Enclave

	mu          sync.Mutex
	modules     map[wire.ServiceID]*registeredModule
	configStore map[string][]byte
	checkpoints map[string][]byte
	// pendingSends holds forwards awaiting a pipe, per destination;
	// dialing marks destinations with an establish-and-flush goroutine.
	pendingSends map[wire.Addr][]queuedSend
	dialing      map[wire.Addr]bool
	closed       bool

	// The data-path counters are telemetry instruments in telem; Counters()
	// reads them back as a legacy view.
	telem         *telemetry.Registry
	trace         telemetry.TraceHook
	rxPackets     *telemetry.Counter
	fastPathHits  *telemetry.Counter
	slowPathSent  *telemetry.Counter
	noModuleDrops *telemetry.Counter
	ruleDrops     *telemetry.Counter
	forwarded     *telemetry.Counter
	delivered     *telemetry.Counter
	forwardErrors *telemetry.Counter
	moduleErrors  *telemetry.Counter
	requeued      *telemetry.Counter
	requeueDrops  *telemetry.Counter
	peersLost     *telemetry.Counter
	fastPathNs    *telemetry.Histogram

	// Drain/handoff/failover instruments (see drain.go).
	drainStarted   *telemetry.Counter
	drainCompleted *telemetry.Counter
	drainAborted   *telemetry.Counter
	handoffPipes   *telemetry.Counter
	failovers      *telemetry.Counter
	drainNs        *telemetry.Histogram
}

// queuedSend is one forward held back while its destination pipe
// (re-)establishes.
type queuedSend struct {
	hdr     []byte
	payload []byte
}

// New creates and starts a service node.
func New(cfg Config) (*SN, error) {
	if cfg.Transport == nil {
		return nil, errors.New("sn: Config.Transport is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 65536
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.TPM == nil {
		t, err := tpm.New()
		if err != nil {
			return nil, err
		}
		cfg.TPM = t
	}
	if cfg.RequeueDepth == 0 {
		cfg.RequeueDepth = 1024
	}
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	// The decision cache is sharded source-affine with exactly one shard per
	// pipe rx worker (mirroring pipe.New's worker-count defaulting): both
	// sides hash sources with wire.ShardIndex, so the worker handling a
	// source is the only one touching that source's shard and fast-path
	// lookups never contend across workers.
	workers := cfg.RxWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	s := &SN{
		cfg:          cfg,
		cache:        cache.NewSourceAffine(cfg.CacheSize, workers),
		tpm:          cfg.TPM,
		modules:      make(map[wire.ServiceID]*registeredModule),
		configStore:  make(map[string][]byte),
		checkpoints:  make(map[string][]byte),
		pendingSends: make(map[wire.Addr][]queuedSend),
		dialing:      make(map[wire.Addr]bool),

		telem:         reg,
		trace:         cfg.Trace,
		rxPackets:     reg.Counter("sn_rx_packets_total"),
		fastPathHits:  reg.Counter("sn_fastpath_hits_total"),
		slowPathSent:  reg.Counter("sn_slowpath_sent_total"),
		noModuleDrops: reg.Counter("sn_no_module_drops_total"),
		ruleDrops:     reg.Counter("sn_rule_drops_total"),
		forwarded:     reg.Counter("sn_forwarded_total"),
		delivered:     reg.Counter("sn_delivered_total"),
		forwardErrors: reg.Counter("sn_forward_errors_total"),
		moduleErrors:  reg.Counter("sn_module_errors_total"),
		requeued:      reg.Counter("sn_requeued_total"),
		requeueDrops:  reg.Counter("sn_requeue_drops_total"),
		peersLost:     reg.Counter("sn_peers_lost_total"),
		fastPathNs:    reg.Histogram("sn_fastpath_service_ns", telemetry.LatencyBuckets),

		drainStarted:   reg.Counter("sn_drain_started_total"),
		drainCompleted: reg.Counter("sn_drain_completed_total"),
		drainAborted:   reg.Counter("sn_drain_aborted_total"),
		handoffPipes:   reg.Counter("sn_handoff_pipes_total"),
		failovers:      reg.Counter("sn_failovers_total"),
		drainNs:        reg.Histogram("sn_drain_duration_ns", telemetry.LatencyBuckets),
	}
	s.cache.RegisterTelemetry(reg)
	if rt, ok := cfg.Transport.(telemetry.Registrable); ok {
		rt.RegisterTelemetry(reg)
	}
	if cfg.EnclaveTerminus {
		encl, err := enclave.New("pipe-terminus", "1.0", cfg.TPM)
		if err != nil {
			return nil, err
		}
		s.terminusEnclave = encl
	}
	mgr, err := pipe.New(pipe.Config{
		Transport:         cfg.Transport,
		Telemetry:         reg,
		Identity:          cfg.Identity,
		Clock:             cfg.Clock,
		Handler:           s.handlePacket,
		BatchHandler:      s.handleBatch,
		Authorize:         cfg.Authorize,
		HandshakeTimeout:  cfg.HandshakeTimeout,
		HandshakeRetries:  cfg.HandshakeRetries,
		RxWorkers:         cfg.RxWorkers,
		TxBatch:           cfg.TxBatch,
		KeepaliveInterval: cfg.KeepaliveInterval,
		DeadAfter:         cfg.DeadAfter,
		Reestablish:       cfg.KeepaliveInterval > 0 && !cfg.DisableAutoConnect,
		OnPeerDown:        s.onPeerDown,
	})
	if err != nil {
		return nil, err
	}
	s.mgr = mgr
	return s, nil
}

// Addr returns the SN's address.
func (s *SN) Addr() wire.Addr { return s.mgr.LocalAddr() }

// Identity returns the SN's identity.
func (s *SN) Identity() handshake.Identity { return s.mgr.Identity() }

// Pipes exposes the pipe manager (used by the peering layer and tests).
func (s *SN) Pipes() *pipe.Manager { return s.mgr }

// Cache exposes the decision cache (used by benchmarks and tests).
func (s *SN) Cache() *cache.Cache { return s.cache }

// Telemetry returns the node registry: every layer's instruments (sn_*,
// pipe_*, cache_*, sn_module_*, transport_*) in one snapshot surface. The
// same registry answers the control-protocol "metrics" op.
func (s *SN) Telemetry() *telemetry.Registry { return s.telem }

// TPM returns the node's TPM.
func (s *SN) TPM() *tpm.TPM { return s.tpm }

// Connect ensures a pipe to addr.
func (s *SN) Connect(addr wire.Addr) error { return s.mgr.Connect(addr) }

// ModuleHealth returns the per-module containment snapshot, sorted by
// service ID for deterministic output.
func (s *SN) ModuleHealth() []ModuleHealth {
	s.mu.Lock()
	regs := make([]*registeredModule, 0, len(s.modules))
	for _, reg := range s.modules {
		regs = append(regs, reg)
	}
	s.mu.Unlock()
	hs := make([]ModuleHealth, 0, len(regs))
	for _, reg := range regs {
		hs = append(hs, reg.health())
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i].Service < hs[j].Service })
	return hs
}

// Counters returns a snapshot of data-path statistics.
func (s *SN) Counters() Counters {
	mods := s.ModuleHealth()
	var slowDrops uint64
	for i := range mods {
		slowDrops += mods[i].Dropped
	}
	return Counters{
		Modules:       mods,
		RxPackets:     s.rxPackets.Load(),
		FastPathHits:  s.fastPathHits.Load(),
		SlowPathSent:  s.slowPathSent.Load(),
		SlowPathDrops: slowDrops,
		NoModuleDrops: s.noModuleDrops.Load(),
		RuleDrops:     s.ruleDrops.Load(),
		Forwarded:     s.forwarded.Load(),
		Delivered:     s.delivered.Load(),
		ForwardErrors: s.forwardErrors.Load(),
		ModuleErrors:  s.moduleErrors.Load(),
		Requeued:      s.requeued.Load(),
		RequeueDrops:  s.requeueDrops.Load(),
		PeersLost:     s.peersLost.Load(),
	}
}

// Register installs a service module on this SN. Modules must be
// registered before traffic for their service arrives; registration after
// Start is safe but packets received in between are dropped.
func (s *SN) Register(mod Module, opts ...ModuleOption) error {
	mc := moduleConfig{
		transport:   TransportChan,
		workers:     1,
		queueDepth:  256,
		restartBase: 25 * time.Millisecond,
		restartMax:  time.Second,
	}
	for _, o := range opts {
		o(&mc)
	}
	if mc.degraded == DegradedForward && !mc.degradedDst.IsValid() {
		return fmt.Errorf("sn: module %s: degraded forward needs a valid destination", mod.Name())
	}
	env := &snEnv{sn: s, module: mod.Name(), service: mod.Service()}

	var encl *enclave.Enclave
	if mc.enclave {
		var err error
		encl, err = enclave.New(mod.Name(), mod.Version(), s.tpm)
		if err != nil {
			return err
		}
	}
	h := newHandleFunc(mod, env, encl)

	reg := &registeredModule{mod: mod, cfg: mc, env: env, enclave: encl}
	if ch, ok := mod.(ControlHandler); ok {
		reg.ctrl = ch
	}
	// The containment callbacks reference reg.disp, which is assigned
	// below, before the module becomes reachable from the packet path.
	notePanic := func(v any) {
		reg.disp.panics.Add(1)
		s.cfg.Logf("sn %s: module %s panicked (contained): %v", s.Addr(), mod.Name(), v)
	}
	noteRestart := func() {
		reg.disp.restarts.Add(1)
		s.cfg.Logf("sn %s: module %s server restarted", s.Addr(), mod.Name())
	}

	var inv invoker
	switch mc.transport {
	case TransportDirect:
		inv = &directInvoker{h: recoverHandleFunc(h, notePanic)}
	case TransportChan:
		inv = newChanInvoker(recoverHandleFunc(h, notePanic), mc.workers)
	case TransportIPC:
		retry := pipe.NewBackoff(mc.restartBase, mc.restartMax, pipe.DeriveSeed([]byte(mod.Name())))
		ipcInv, err := newIPCInvoker(mod.Name(), h, s.cfg.Clock, retry, s.cfg.Logf, notePanic, noteRestart)
		if err != nil {
			return err
		}
		inv = ipcInv
	default:
		return fmt.Errorf("sn: unknown transport %v", mc.transport)
	}

	var brk *breaker
	if mc.breakerThreshold > 0 {
		cooldown := mc.breakerCooldown
		if cooldown <= 0 {
			cooldown = time.Second
		}
		brk = newBreaker(mc.breakerThreshold, cooldown, s.cfg.Clock)
		b := brk
		_ = s.telem.Register(
			telemetry.NewGaugeFunc(telemetry.Name("sn_module_breaker_state", "module", mod.Name()), func() int64 {
				st, _, _, _ := b.snapshot()
				return int64(st)
			}),
			telemetry.NewCounterFunc(telemetry.Name("sn_module_breaker_trips_total", "module", mod.Name()), func() uint64 {
				_, _, trips, _ := b.snapshot()
				return trips
			}),
			telemetry.NewCounterFunc(telemetry.Name("sn_module_breaker_recoveries_total", "module", mod.Name()), func() uint64 {
				_, _, _, recov := b.snapshot()
				return recov
			}),
		)
	}
	reg.disp = newDispatcher(inv, dispatcherConfig{
		workers:  mc.workers,
		depth:    mc.queueDepth,
		clk:      s.cfg.Clock,
		deadline: mc.deadline,
		brk:      brk,
		module:   mod.Name(),
		telem:    s.telem,
		apply:    func(pkt *Packet, d *Decision) { s.applyDecision(pkt, d) },
		onError: func(pkt *Packet, err error) {
			s.moduleErrors.Add(1)
			s.cfg.Logf("sn %s: module %s error on %s: %v", s.Addr(), mod.Name(), pkt.Key(), err)
		},
		degrade: func(pkt *Packet) { s.degradePacket(reg, pkt) },
	})

	s.mu.Lock()
	if _, dup := s.modules[mod.Service()]; dup {
		s.mu.Unlock()
		reg.disp.close()
		return fmt.Errorf("sn: service %s already registered", mod.Service())
	}
	s.modules[mod.Service()] = reg
	s.mu.Unlock()

	if st, ok := mod.(Starter); ok {
		if err := st.Start(env); err != nil {
			s.mu.Lock()
			delete(s.modules, mod.Service())
			s.mu.Unlock()
			reg.disp.close()
			return fmt.Errorf("sn: start module %s: %w", mod.Name(), err)
		}
	}
	return nil
}

// Module returns the registered module for a service, if any.
func (s *SN) Module(svc wire.ServiceID) (Module, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg, ok := s.modules[svc]
	if !ok {
		return nil, false
	}
	return reg.mod, true
}

// ModuleEnclave returns the enclave hosting a service, if it runs in one.
func (s *SN) ModuleEnclave(svc wire.ServiceID) (*enclave.Enclave, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg, ok := s.modules[svc]
	if !ok || reg.enclave == nil {
		return nil, false
	}
	return reg.enclave, true
}

// Inject runs a packet through the pipe-terminus as if it had arrived on a
// pipe from src. The inter-edomain forwarder uses it to re-inject
// decapsulated transit packets so local services see the original source.
func (s *SN) Inject(src wire.Addr, hdr wire.ILPHeader, payload []byte) {
	raw, err := hdr.Encode()
	if err != nil {
		return
	}
	s.handlePacket(s.mgr, src, hdr, raw, payload)
}

// handlePacket is the pipe-terminus (§4, Figure 2): decrypted packets
// arrive here, consult the decision cache, and either execute the cached
// action (fast path) or go to the service module (slow path). It runs
// concurrently on the pipe manager's sharded rx workers — one worker per
// source address — so per-flow order is preserved without any lock here.
// hdrRaw is the encoded header as it arrived; hdr.Data and hdrRaw alias
// the calling worker's scratch buffer and are only valid until return,
// while payload is a transport-owned per-datagram buffer safe to retain.
// tx is the worker's egress sender: fast-path forwards issued through it
// coalesce into vectored transport batches, so a cache-hit burst to one
// peer leaves as a single sendmmsg on the UDP substrate.
func (s *SN) handlePacket(tx pipe.Sender, src wire.Addr, hdr wire.ILPHeader, hdrRaw, payload []byte) {
	s.rxPackets.Add(1)
	if s.trace != nil {
		s.trace(telemetry.PacketTrace{Point: telemetry.TraceRx, Src: src, Service: hdr.Service, Conn: hdr.Conn, Bytes: len(payload)})
	}
	if s.terminusEnclave != nil {
		// The packet crosses into (and back out of) enclave memory before
		// terminus processing — the Appendix C enclave configuration.
		crossed, err := s.terminusEnclave.Run(payload, func(in []byte) ([]byte, error) { return in, nil })
		if err != nil {
			return
		}
		payload = crossed
	}
	key := wire.FlowKey{Src: src, Service: hdr.Service, Conn: hdr.Conn}
	if action, ok := s.cache.Lookup(key); ok {
		// The histogram covers the post-lookup serve cost: executing the
		// cached action, including any coalesced egress enqueue. One
		// time.Now() pair per hit; the wall clock (not the injected test
		// clock) because this measures real compute time.
		start := time.Now()
		s.fastPathHits.Add(1)
		if s.trace != nil {
			s.trace(telemetry.PacketTrace{Point: telemetry.TraceFastPath, Src: src, Service: hdr.Service, Conn: hdr.Conn, Bytes: len(payload)})
		}
		s.applyFastAction(tx, src, &hdr, hdrRaw, payload, &action)
		s.fastPathNs.Observe(uint64(time.Since(start)))
		return
	}
	s.handleMiss(src, hdr, payload)
}

// handleBatch is the batch pipe-terminus: one call per decrypted
// same-source run of a receive batch. Consecutive packets of one flow share
// a single decision-cache lookup (LookupN accounts the whole run's hits in
// one shard visit), so a recvmmsg burst of a hot flow costs one cache
// round-trip instead of one per packet. Flow boundaries, misses, and the
// enclave-terminus configuration fall back to the per-packet path with
// identical semantics.
func (s *SN) handleBatch(tx pipe.Sender, src wire.Addr, pkts []pipe.RxPacket) {
	if s.terminusEnclave != nil {
		// Every packet crosses the enclave boundary individually; keep the
		// exact Appendix C per-packet semantics.
		for k := range pkts {
			s.handlePacket(tx, src, pkts[k].Hdr, pkts[k].HdrRaw, pkts[k].Payload)
		}
		return
	}
	for i := 0; i < len(pkts); {
		j := i + 1
		for j < len(pkts) && pkts[j].Hdr.Service == pkts[i].Hdr.Service && pkts[j].Hdr.Conn == pkts[i].Hdr.Conn {
			j++
		}
		run := pkts[i:j]
		i = j
		s.rxPackets.Add(uint64(len(run)))
		if s.trace != nil {
			for k := range run {
				s.trace(telemetry.PacketTrace{Point: telemetry.TraceRx, Src: src, Service: run[k].Hdr.Service, Conn: run[k].Hdr.Conn, Bytes: len(run[k].Payload)})
			}
		}
		key := wire.FlowKey{Src: src, Service: run[0].Hdr.Service, Conn: run[0].Hdr.Conn}
		if action, ok := s.cache.LookupN(key, uint64(len(run))); ok {
			// One histogram observation covers serving the whole run; see
			// handlePacket for what the interval measures.
			start := time.Now()
			s.fastPathHits.Add(uint64(len(run)))
			for k := range run {
				if s.trace != nil {
					s.trace(telemetry.PacketTrace{Point: telemetry.TraceFastPath, Src: src, Service: run[k].Hdr.Service, Conn: run[k].Hdr.Conn, Bytes: len(run[k].Payload)})
				}
				s.applyFastAction(tx, src, &run[k].Hdr, run[k].HdrRaw, run[k].Payload, &action)
			}
			s.fastPathNs.Observe(uint64(time.Since(start)))
			continue
		}
		for k := range run {
			s.handleMiss(src, run[k].Hdr, run[k].Payload)
		}
	}
}

// handleMiss is the shared post-lookup slow path: control-protocol packets
// are answered inline, everything else is handed to its service module.
func (s *SN) handleMiss(src wire.Addr, hdr wire.ILPHeader, payload []byte) {
	if hdr.Service == wire.SvcControl {
		s.handleControl(src, hdr, payload)
		return
	}
	if hdr.Service == wire.SvcHandoff {
		s.handleHandoff(src, payload)
		return
	}

	s.mu.Lock()
	reg, ok := s.modules[hdr.Service]
	s.mu.Unlock()
	if !ok {
		s.noModuleDrops.Add(1)
		if s.trace != nil {
			s.trace(telemetry.PacketTrace{Point: telemetry.TraceDrop, Src: src, Service: hdr.Service, Conn: hdr.Conn, Bytes: len(payload)})
		}
		return
	}
	// The slow path retains the packet past this call, so the
	// scratch-aliased header data must be copied; payload is per-datagram
	// (transport-owned) and may be kept as-is.
	pkt := &Packet{Src: src, Hdr: hdr, Payload: payload}
	if len(hdr.Data) > 0 {
		pkt.Hdr.Data = append([]byte(nil), hdr.Data...)
	}
	if reg.disp.submit(pkt) {
		s.slowPathSent.Add(1)
		if s.trace != nil {
			s.trace(telemetry.PacketTrace{Point: telemetry.TraceSlowPath, Src: src, Service: hdr.Service, Conn: hdr.Conn, Bytes: len(payload)})
		}
	}
}

// applyFastAction executes a cached decision on the fast path. Forwarding
// with no header rewrite reuses the raw inbound header bytes, so the whole
// hit path — decrypt, lookup, re-encrypt, send — allocates nothing beyond
// the transport's own datagram copy.
func (s *SN) applyFastAction(tx pipe.Sender, src wire.Addr, hdr *wire.ILPHeader, hdrRaw, payload []byte, action *cache.Action) {
	if action.Drop {
		s.ruleDrops.Add(1)
		if s.trace != nil {
			s.trace(telemetry.PacketTrace{Point: telemetry.TraceDrop, Src: src, Service: hdr.Service, Conn: hdr.Conn, Bytes: len(payload)})
		}
		return
	}
	if action.Deliver {
		s.delivered.Add(1)
		if s.trace != nil {
			s.trace(telemetry.PacketTrace{Point: telemetry.TraceDeliver, Src: src, Service: hdr.Service, Conn: hdr.Conn, Bytes: len(payload)})
		}
		if s.cfg.OnDeliver != nil {
			pkt := &Packet{Src: src, Hdr: *hdr, Payload: payload}
			if len(hdr.Data) > 0 {
				pkt.Hdr.Data = append([]byte(nil), hdr.Data...)
			}
			s.cfg.OnDeliver(pkt)
		}
	}
	if len(action.Forward) == 0 {
		return
	}
	hdrBytes := action.RewriteHeader
	if hdrBytes == nil {
		hdrBytes = hdrRaw
	}
	for _, dst := range action.Forward {
		if s.trace != nil {
			s.trace(telemetry.PacketTrace{Point: telemetry.TraceForward, Src: src, Dst: dst, Service: hdr.Service, Conn: hdr.Conn, Bytes: len(payload)})
		}
		s.sendHeaderBytes(tx, dst, hdrBytes, payload)
	}
}

// applyDecision executes a module's verdict after the slow path.
func (s *SN) applyDecision(pkt *Packet, d *Decision) {
	for _, r := range d.Rules {
		s.cache.Add(r.Key, r.Action)
	}
	for _, k := range d.Invalidate {
		s.cache.Invalidate(k)
	}
	var origHdr []byte
	for i := range d.Forwards {
		f := &d.Forwards[i]
		var hdrBytes []byte
		if f.Hdr != nil {
			enc, err := f.Hdr.Encode()
			if err != nil {
				s.forwardErrors.Add(1)
				continue
			}
			hdrBytes = enc
		} else {
			if origHdr == nil {
				enc, err := pkt.Hdr.Encode()
				if err != nil {
					s.forwardErrors.Add(1)
					continue
				}
				origHdr = enc
			}
			hdrBytes = origHdr
		}
		payload := pkt.Payload
		if f.Payload != nil {
			payload = f.Payload
		} else if f.Empty {
			payload = nil
		}
		// Module verdicts run on dispatcher goroutines, not the rx worker,
		// so they send through the manager (immediate path).
		s.sendHeaderBytes(s.mgr, f.Dst, hdrBytes, payload)
	}
}

// degradePacket executes a module's degraded action for one packet shed
// by its open circuit breaker: unmodified pass-through forwarding to the
// configured fallback next hop, or (the default) dropping it. The shed
// count itself is kept by the dispatcher.
func (s *SN) degradePacket(reg *registeredModule, pkt *Packet) {
	if reg.cfg.degraded != DegradedForward {
		return
	}
	enc, err := pkt.Hdr.Encode()
	if err != nil {
		s.forwardErrors.Add(1)
		return
	}
	// Degraded forwards run on dispatcher goroutines, so they send through
	// the manager like module verdicts do.
	s.sendHeaderBytes(s.mgr, reg.cfg.degradedDst, enc, pkt.Payload)
}

// onPeerDown reacts to dead-peer detection: every cached decision sourced
// from the dead peer or forwarding through it is invalidated, so those
// flows fall back to the slow path and are re-decided against the
// re-established pipe (which carries a fresh master secret and epoch).
func (s *SN) onPeerDown(addr wire.Addr, identity ed25519.PublicKey) {
	s.peersLost.Add(1)
	s.cache.InvalidateSource(addr)
	s.cache.InvalidateDest(addr)
	s.cfg.Logf("sn %s: pipe to %s died; decision cache invalidated for it", s.Addr(), addr)
	if s.cfg.OnPeerDown != nil {
		s.cfg.OnPeerDown(addr, identity)
	}
}

// sendHeaderBytes forwards one packet copy, optionally establishing the
// pipe on demand. When no pipe exists the packet is requeued (bounded per
// destination) rather than dropped, and a single establish-and-flush
// goroutine per destination performs the handshake: this method is called
// from the pipe-terminus receive loop, and a blocking handshake there
// would deadlock (the handshake reply arrives on that same loop).
func (s *SN) sendHeaderBytes(tx pipe.Sender, dst wire.Addr, hdrBytes, payload []byte) {
	err := tx.SendHeaderBytes(dst, hdrBytes, payload)
	if errors.Is(err, pipe.ErrNoPipe) && !s.cfg.DisableAutoConnect {
		s.requeue(dst, hdrBytes, payload)
		return
	}
	if err != nil {
		s.forwardErrors.Add(1)
		s.cfg.Logf("sn %s: forward to %s failed: %v", s.Addr(), dst, err)
		return
	}
	s.forwarded.Add(1)
}

// requeue holds one forward while dst's pipe (re-)establishes. hdrBytes
// may alias the rx worker's scratch buffer, so both buffers are
// snapshotted before the packet outlives the call.
func (s *SN) requeue(dst wire.Addr, hdrBytes, payload []byte) {
	q := queuedSend{
		hdr:     append([]byte(nil), hdrBytes...),
		payload: append([]byte(nil), payload...),
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.forwardErrors.Add(1)
		return
	}
	if len(s.pendingSends[dst]) >= s.cfg.RequeueDepth {
		s.mu.Unlock()
		s.requeueDrops.Add(1)
		return
	}
	s.pendingSends[dst] = append(s.pendingSends[dst], q)
	spawn := !s.dialing[dst]
	if spawn {
		s.dialing[dst] = true
	}
	s.mu.Unlock()
	s.requeued.Add(1)
	if spawn {
		go s.establishAndFlush(dst)
	}
}

// establishAndFlush connects to dst (the pipe manager applies handshake
// backoff) and drains the destination's requeued forwards, including any
// that arrived while flushing.
func (s *SN) establishAndFlush(dst wire.Addr) {
	err := s.mgr.Connect(dst)
	if err != nil {
		s.cfg.Logf("sn %s: connect to %s failed: %v", s.Addr(), dst, err)
	}
	for {
		s.mu.Lock()
		q := s.pendingSends[dst]
		delete(s.pendingSends, dst)
		if len(q) == 0 {
			delete(s.dialing, dst)
			s.mu.Unlock()
			return
		}
		s.mu.Unlock()
		for _, p := range q {
			if err != nil {
				s.forwardErrors.Add(1)
				continue
			}
			if serr := s.mgr.SendHeaderBytes(dst, p.hdr, p.payload); serr != nil {
				s.forwardErrors.Add(1)
			} else {
				s.forwarded.Add(1)
			}
		}
	}
}

// handleControl serves the out-of-band control protocol: a JSON request
// naming a target service and operation, answered on the same connection
// ID.
func (s *SN) handleControl(src wire.Addr, hdr wire.ILPHeader, payload []byte) {
	respond := func(resp ControlResponse) {
		body, err := json.Marshal(resp)
		if err != nil {
			return
		}
		s.sendControl(src, hdr.Conn, body)
	}
	var req ControlRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		respond(ControlResponse{Error: "malformed control request"})
		return
	}
	// "health" is answered by the SN itself so operators can read module
	// containment state even for modules with no control handler — and
	// especially for modules too broken to answer anything.
	if req.Op == "health" {
		var data []byte
		var err error
		if req.Target == wire.SvcControl || req.Target == wire.SvcNone {
			data, err = json.Marshal(s.ModuleHealth())
		} else {
			s.mu.Lock()
			reg, ok := s.modules[req.Target]
			s.mu.Unlock()
			if !ok {
				respond(ControlResponse{Error: fmt.Sprintf("service %s not registered", req.Target)})
				return
			}
			data, err = json.Marshal(reg.health())
		}
		if err != nil {
			respond(ControlResponse{Error: err.Error()})
			return
		}
		respond(ControlResponse{OK: true, Data: data})
		return
	}
	// "metrics" is likewise answered by the SN itself: one snapshot of the
	// node registry covering every layer (sn_*, pipe_*, cache_*,
	// sn_module_*, transport_*). Each sample is an atomic read; the set is
	// not one consistent cut (see the telemetry package contract).
	if req.Op == "metrics" && (req.Target == wire.SvcControl || req.Target == wire.SvcNone) {
		data, err := json.Marshal(s.telem.Snapshot())
		if err != nil {
			respond(ControlResponse{Error: err.Error()})
			return
		}
		respond(ControlResponse{OK: true, Data: data})
		return
	}
	s.mu.Lock()
	reg, ok := s.modules[req.Target]
	s.mu.Unlock()
	if !ok || reg.ctrl == nil {
		respond(ControlResponse{Error: fmt.Sprintf("service %s has no control handler", req.Target)})
		return
	}
	data, err := reg.ctrl.HandleControl(reg.env, src, req.Op, req.Args)
	if err != nil {
		respond(ControlResponse{Error: err.Error()})
		return
	}
	respond(ControlResponse{OK: true, Data: data})
}

func (s *SN) sendControl(dst wire.Addr, conn wire.ConnectionID, body []byte) {
	hdr := wire.ILPHeader{Service: wire.SvcControl, Conn: conn}
	if err := s.mgr.Send(dst, &hdr, body); err != nil {
		s.forwardErrors.Add(1)
	}
}

// Close stops all modules and tears down the node.
func (s *SN) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	mods := make([]*registeredModule, 0, len(s.modules))
	for _, reg := range s.modules {
		mods = append(mods, reg)
	}
	s.mu.Unlock()
	err := s.mgr.Close()
	for _, reg := range mods {
		reg.stopOnce.Do(func() {
			reg.disp.close()
			if st, ok := reg.mod.(Stopper); ok {
				if serr := st.Stop(); serr != nil && err == nil {
					err = serr
				}
			}
		})
	}
	return err
}

// snEnv implements Env for one registered module.
type snEnv struct {
	sn      *SN
	module  string
	service wire.ServiceID
}

func (e *snEnv) LocalAddr() wire.Addr { return e.sn.Addr() }
func (e *snEnv) Inject(src wire.Addr, hdr wire.ILPHeader, payload []byte) {
	e.sn.Inject(src, hdr, payload)
}
func (e *snEnv) Now() time.Time                         { return e.sn.cfg.Clock.Now() }
func (e *snEnv) After(d time.Duration) <-chan time.Time { return e.sn.cfg.Clock.After(d) }
func (e *snEnv) Connect(dst wire.Addr) error            { return e.sn.mgr.Connect(dst) }
func (e *snEnv) PeerIdentity(addr wire.Addr) (ed25519.PublicKey, bool) {
	return e.sn.mgr.PeerIdentity(addr)
}
func (e *snEnv) AddRule(k wire.FlowKey, a cache.Action) { e.sn.cache.Add(k, a) }
func (e *snEnv) InvalidateRule(k wire.FlowKey)          { e.sn.cache.Invalidate(k) }
func (e *snEnv) RuleHitCount(k wire.FlowKey) (uint64, bool) {
	return e.sn.cache.HitCount(k)
}
func (e *snEnv) RuleRecentlyUsed(k wire.FlowKey, w time.Duration) bool {
	return e.sn.cache.RecentlyUsed(k, w)
}

func (e *snEnv) Send(dst wire.Addr, hdr *wire.ILPHeader, payload []byte) error {
	err := e.sn.mgr.Send(dst, hdr, payload)
	if errors.Is(err, pipe.ErrNoPipe) && !e.sn.cfg.DisableAutoConnect {
		if cerr := e.sn.mgr.Connect(dst); cerr != nil {
			return cerr
		}
		return e.sn.mgr.Send(dst, hdr, payload)
	}
	return err
}

func (e *snEnv) key(k string) string {
	return fmt.Sprintf("%s/%s", e.module, k)
}

func (e *snEnv) Config(k string) ([]byte, bool) {
	e.sn.mu.Lock()
	defer e.sn.mu.Unlock()
	v, ok := e.sn.configStore[e.key(k)]
	return v, ok
}

func (e *snEnv) SetConfig(k string, v []byte) {
	e.sn.mu.Lock()
	defer e.sn.mu.Unlock()
	e.sn.configStore[e.key(k)] = append([]byte(nil), v...)
}

func (e *snEnv) Checkpoint(k string, data []byte) {
	e.sn.mu.Lock()
	defer e.sn.mu.Unlock()
	e.sn.checkpoints[e.key(k)] = append([]byte(nil), data...)
}

func (e *snEnv) Restore(k string) ([]byte, bool) {
	e.sn.mu.Lock()
	defer e.sn.mu.Unlock()
	v, ok := e.sn.checkpoints[e.key(k)]
	return v, ok
}

func (e *snEnv) Logf(format string, args ...any) {
	e.sn.cfg.Logf("[%s/%s] %s", e.sn.Addr(), e.module, fmt.Sprintf(format, args...))
}
