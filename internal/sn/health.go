package sn

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"interedge/internal/clock"
	"interedge/internal/wire"
)

// This file is the slow path's failure-containment layer. The pipe-terminus
// fast path is trusted code, but service modules are third-party logic
// (§4.2, §6.3): a module may panic, hang, error on every packet, or — on
// the IPC transport — crash its server outright. None of that may take the
// SN down or wedge a dispatcher worker. Containment has four parts:
//
//   - panic recovery on every transport (a recovered panic becomes a
//     module error; on IPC it additionally crashes the module-server
//     connection, modeling the death of a separate module process);
//   - a per-invoke deadline driven by the SN's injected clock, so a hung
//     module times out instead of capturing a worker forever;
//   - automatic redial of a crashed IPC module server with the pipe
//     layer's capped-exponential deterministic-jitter backoff;
//   - a per-module circuit breaker that trips after a run of consecutive
//     failures and sheds packets to a degraded action until a half-open
//     probe proves the module healthy again.

// BreakerState is the circuit-breaker state of one module.
type BreakerState int32

const (
	// BreakerClosed: invocations flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: invocations are shed to the degraded action until the
	// cooldown expires.
	BreakerOpen
	// BreakerHalfOpen: one probe invocation is in flight; everything else
	// is still shed. The probe's outcome closes or re-opens the breaker.
	BreakerHalfOpen
)

// String names the state for logs and the health snapshot.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state-%d", int32(s))
	}
}

// DegradedAction selects what an open breaker does with the module's
// slow-path packets.
type DegradedAction int

const (
	// DegradedDrop discards shed packets (the default): overload and
	// misbehavior are contained by losing that module's traffic only.
	DegradedDrop DegradedAction = iota
	// DegradedForward passes shed packets through unmodified to a
	// configured fallback next hop (e.g. another SN hosting the same
	// module), so the service degrades to extra latency instead of loss.
	DegradedForward
)

// ModulePanicError is what a recovered module panic surfaces as: an
// ordinary module error carrying the panic value and stack, so the caller
// (dispatcher, breaker, operator) sees a contained failure instead of a
// dead process.
type ModulePanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *ModulePanicError) Error() string {
	return fmt.Sprintf("sn: module panicked: %v", e.Value)
}

// ModuleHealth is the containment snapshot of one registered module,
// exposed through SN.Counters() and the control-plane "health" operation.
type ModuleHealth struct {
	Service   wire.ServiceID `json:"service"`
	Name      string         `json:"name"`
	Transport string         `json:"transport"`
	// State is the breaker state ("closed", "open", "half-open").
	State string `json:"state"`
	// ConsecutiveFailures is the current run of failed invocations; it
	// resets on any success.
	ConsecutiveFailures uint64 `json:"consecutive_failures"`
	// Handled counts invocations that returned a decision.
	Handled uint64 `json:"handled"`
	// Dropped counts packets shed at submit because the queue was full.
	Dropped uint64 `json:"dropped"`
	// Errored counts failed invocations of any cause (module error,
	// timeout, panic, crashed IPC server).
	Errored uint64 `json:"errored"`
	// Timeouts counts invocations that exceeded the module deadline
	// (a subset of Errored).
	Timeouts uint64 `json:"timeouts"`
	// Panics counts recovered module panics.
	Panics uint64 `json:"panics"`
	// Restarts counts successful redials of the IPC module server.
	Restarts uint64 `json:"restarts"`
	// BreakerTrips counts transitions to open (including a failed
	// half-open probe re-opening).
	BreakerTrips uint64 `json:"breaker_trips"`
	// BreakerRecoveries counts half-open probes that closed the breaker.
	BreakerRecoveries uint64 `json:"breaker_recoveries"`
	// Shed counts packets diverted to the degraded action while the
	// breaker was open.
	Shed uint64 `json:"shed"`
}

// breaker is one module's circuit breaker. A nil breaker is valid and
// always allows (the feature is armed per module with WithBreaker).
type breaker struct {
	threshold int
	cooldown  time.Duration
	clk       clock.Clock

	mu          sync.Mutex
	state       BreakerState
	consecFails uint64
	openUntil   time.Time
	probing     bool

	trips      atomic.Uint64
	recoveries atomic.Uint64
}

func newBreaker(threshold int, cooldown time.Duration, clk clock.Clock) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, clk: clk}
}

// allow reports whether an invocation may proceed. Open breakers start a
// single half-open probe once the cooldown has elapsed; concurrent
// arrivals while the probe is in flight are shed.
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerOpen:
		if b.clk.Now().Before(b.openUntil) {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// onResult records one invocation outcome and drives the state machine:
// consecutive failures trip a closed breaker, a failed probe re-opens for
// another cooldown, a successful probe closes the breaker.
func (b *breaker) onResult(err error) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		if b.state == BreakerHalfOpen {
			b.state = BreakerClosed
			b.recoveries.Add(1)
		}
		b.probing = false
		b.consecFails = 0
		return
	}
	b.consecFails++
	switch b.state {
	case BreakerHalfOpen:
		b.probing = false
		b.state = BreakerOpen
		b.openUntil = b.clk.Now().Add(b.cooldown)
		b.trips.Add(1)
	case BreakerClosed:
		if b.consecFails >= uint64(b.threshold) {
			b.state = BreakerOpen
			b.openUntil = b.clk.Now().Add(b.cooldown)
			b.trips.Add(1)
		}
	}
}

// snapshot returns the state, current failure run, and transition counts.
func (b *breaker) snapshot() (state BreakerState, consecFails, trips, recoveries uint64) {
	if b == nil {
		return BreakerClosed, 0, 0, 0
	}
	b.mu.Lock()
	state, consecFails = b.state, b.consecFails
	b.mu.Unlock()
	return state, consecFails, b.trips.Load(), b.recoveries.Load()
}
