//go:build !race

package sn

const raceEnabled = false
