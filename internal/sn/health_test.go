package sn

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"interedge/internal/clock"
	"interedge/internal/netsim"
	"interedge/internal/pipe"
	"interedge/internal/wire"
)

// panicModule panics on payload "boom" and echoes everything else back to
// the sender unmodified.
type panicModule struct{ calls atomic.Uint64 }

func (m *panicModule) Service() wire.ServiceID { return wire.SvcNull }
func (m *panicModule) Name() string            { return "panicky" }
func (m *panicModule) Version() string         { return "1" }
func (m *panicModule) HandlePacket(_ Env, pkt *Packet) (Decision, error) {
	m.calls.Add(1)
	if string(pkt.Payload) == "boom" {
		panic("kaboom")
	}
	return Decision{Forwards: []Forward{{Dst: pkt.Src}}}, nil
}

// flakyModule fails every packet until healed, then echoes.
type flakyModule struct{ healed atomic.Bool }

func (m *flakyModule) Service() wire.ServiceID { return wire.SvcNull }
func (m *flakyModule) Name() string            { return "flaky" }
func (m *flakyModule) Version() string         { return "1" }
func (m *flakyModule) HandlePacket(_ Env, pkt *Packet) (Decision, error) {
	if !m.healed.Load() {
		return Decision{}, errors.New("still broken")
	}
	return Decision{Forwards: []Forward{{Dst: pkt.Src}}}, nil
}

// moduleHealth fetches the health snapshot of one service.
func moduleHealth(t *testing.T, node *SN, svc wire.ServiceID) ModuleHealth {
	t.Helper()
	for _, h := range node.ModuleHealth() {
		if h.Service == svc {
			return h
		}
	}
	t.Fatalf("no health entry for service %v", svc)
	return ModuleHealth{}
}

func TestBreakerStateMachine(t *testing.T) {
	m := clock.NewManual(time.Unix(0, 0))
	b := newBreaker(3, 10*time.Second, m)
	boom := errors.New("x")

	// Three consecutive failures trip the breaker.
	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused invocation %d", i)
		}
		b.onResult(boom)
	}
	state, consec, trips, _ := b.snapshot()
	if state != BreakerOpen || consec != 3 || trips != 1 {
		t.Fatalf("after trip: state=%v consec=%d trips=%d", state, consec, trips)
	}
	if b.allow() {
		t.Fatal("open breaker allowed an invocation before cooldown")
	}

	// Cooldown elapses: exactly one half-open probe goes through.
	m.Advance(10 * time.Second)
	if !b.allow() {
		t.Fatal("no half-open probe after cooldown")
	}
	if b.allow() {
		t.Fatal("second invocation allowed while probe in flight")
	}
	// Failed probe re-opens for another cooldown.
	b.onResult(boom)
	if state, _, trips, _ = b.snapshot(); state != BreakerOpen || trips != 2 {
		t.Fatalf("after failed probe: state=%v trips=%d", state, trips)
	}
	if b.allow() {
		t.Fatal("breaker allowed invocation right after failed probe")
	}

	// Successful probe closes the breaker.
	m.Advance(10 * time.Second)
	if !b.allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.onResult(nil)
	state, consec, _, recoveries := b.snapshot()
	if state != BreakerClosed || consec != 0 || recoveries != 1 {
		t.Fatalf("after recovery: state=%v consec=%d recoveries=%d", state, consec, recoveries)
	}
	if !b.allow() {
		t.Fatal("recovered breaker refused invocation")
	}
}

func TestNilBreakerAlwaysAllows(t *testing.T) {
	var b *breaker
	if !b.allow() {
		t.Fatal("nil breaker refused")
	}
	b.onResult(errors.New("x")) // must not panic
	if state, _, _, _ := b.snapshot(); state != BreakerClosed {
		t.Fatalf("nil breaker state %v", state)
	}
}

// testPanicContainment pins the containment contract on the in-process
// transports: a module panic becomes a counted module error, the SN
// survives, and the module keeps serving subsequent packets.
func testPanicContainment(t *testing.T, transport Transport) {
	t.Helper()
	network := netsim.NewNetwork()
	node := newTestSN(t, network, "fd00::5")
	mod := &panicModule{}
	if err := node.Register(mod, WithTransport(transport)); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, network, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, []byte("boom")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		h := moduleHealth(t, node, wire.SvcNull)
		return h.Panics == 1 && h.Errored == 1 && node.Counters().ModuleErrors == 1
	})
	// The module is still in service after the contained panic.
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcNull, Conn: 2}, []byte("fine")); err != nil {
		t.Fatal(err)
	}
	if got := cl.await(t); string(got.payload) != "fine" {
		t.Fatalf("post-panic echo payload %q", got.payload)
	}
	if h := moduleHealth(t, node, wire.SvcNull); h.Handled != 1 {
		t.Fatalf("Handled = %d after post-panic echo", h.Handled)
	}
}

func TestPanicContainmentChan(t *testing.T)   { testPanicContainment(t, TransportChan) }
func TestPanicContainmentDirect(t *testing.T) { testPanicContainment(t, TransportDirect) }

// TestPanicIPCCrashRestart: on the IPC transport a module panic kills the
// module server connection; the invoker must count the crash, redial with
// backoff, and serve packets again on the fresh connection.
func TestPanicIPCCrashRestart(t *testing.T) {
	network := netsim.NewNetwork()
	node := newTestSN(t, network, "fd00::5")
	mod := &panicModule{}
	err := node.Register(mod,
		WithTransport(TransportIPC),
		WithRestartBackoff(time.Millisecond, 8*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, network, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, []byte("boom")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		h := moduleHealth(t, node, wire.SvcNull)
		return h.Panics >= 1 && h.Errored >= 1 && h.Restarts >= 1
	})
	// The restarted server answers on the redialed connection.
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcNull, Conn: 2}, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if got := cl.await(t); string(got.payload) != "alive" {
		t.Fatalf("post-restart echo payload %q", got.payload)
	}
}

// TestDeadlineTimeout drives the per-invoke deadline from a Manual clock:
// a hung module invocation fails with a timeout once the clock advances
// past the deadline, and (with a one-failure breaker) trips the breaker so
// the hung module stops being invoked.
func TestDeadlineTimeout(t *testing.T) {
	manual := clock.NewManual(time.Unix(0, 0))
	network := netsim.NewNetwork()
	node := newTestSN(t, network, "fd00::5", func(c *Config) { c.Clock = manual })
	block := make(chan struct{})
	defer close(block)
	mod := &blockingModule{block: block}
	err := node.Register(mod, WithDeadline(100*time.Millisecond), WithBreaker(1, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, network, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, nil); err != nil {
		t.Fatal(err)
	}
	// The deadline timer is armed by the dispatch worker asynchronously, so
	// keep advancing until it has been created and fired.
	waitFor(t, func() bool {
		manual.Advance(100 * time.Millisecond)
		return moduleHealth(t, node, wire.SvcNull).Timeouts >= 1
	})
	h := moduleHealth(t, node, wire.SvcNull)
	if h.Timeouts != 1 || h.Errored != 1 {
		t.Fatalf("Timeouts=%d Errored=%d, want 1/1", h.Timeouts, h.Errored)
	}
	if h.State != BreakerOpen.String() || h.BreakerTrips != 1 {
		t.Fatalf("state=%q trips=%d after timeout with 1-failure breaker", h.State, h.BreakerTrips)
	}
}

// TestBreakerTripAndRecoverEndToEnd: a failing module trips its breaker,
// sheds traffic while open, and recovers through a half-open probe once it
// heals.
func TestBreakerTripAndRecoverEndToEnd(t *testing.T) {
	network := netsim.NewNetwork()
	node := newTestSN(t, network, "fd00::5")
	mod := &flakyModule{}
	if err := node.Register(mod, WithBreaker(3, 300*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, network, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	send := func(payload string) {
		t.Helper()
		if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, []byte(payload)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		send("fail")
	}
	waitFor(t, func() bool {
		h := moduleHealth(t, node, wire.SvcNull)
		return h.BreakerTrips == 1 && h.State == BreakerOpen.String()
	})
	// While open, packets are shed (default degraded action: drop).
	send("shed")
	waitFor(t, func() bool { return moduleHealth(t, node, wire.SvcNull).Shed >= 1 })

	// Heal the module; once the cooldown elapses a probe closes the breaker.
	mod.healed.Store(true)
	waitFor(t, func() bool {
		send("probe")
		return moduleHealth(t, node, wire.SvcNull).BreakerRecoveries >= 1
	})
	h := moduleHealth(t, node, wire.SvcNull)
	if h.State != BreakerClosed.String() {
		t.Fatalf("state %q after recovery", h.State)
	}
	if h.Handled == 0 {
		t.Fatal("no handled invocations after recovery")
	}
}

// TestDegradedForwardPassThrough: with WithDegradedForward, packets shed by
// an open breaker pass through unmodified to the fallback next hop instead
// of being dropped.
func TestDegradedForwardPassThrough(t *testing.T) {
	network := netsim.NewNetwork()
	node := newTestSN(t, network, "fd00::5")
	fallback := newClient(t, network, "fd00::7")
	err := node.Register(failModule{},
		WithBreaker(2, time.Hour),
		WithDegradedForward(fallback.addr))
	if err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, network, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, []byte("fail")); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return moduleHealth(t, node, wire.SvcNull).BreakerTrips == 1 })
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, []byte("pass-through")); err != nil {
		t.Fatal(err)
	}
	got := fallback.await(t)
	if string(got.payload) != "pass-through" {
		t.Fatalf("fallback payload %q", got.payload)
	}
	if got.hdr.Service != wire.SvcNull || got.hdr.Conn != 1 {
		t.Fatalf("fallback header %+v (degraded forward must not rewrite)", got.hdr)
	}
	if h := moduleHealth(t, node, wire.SvcNull); h.Shed == 0 {
		t.Fatalf("Shed = 0 after degraded forward")
	}
}

func TestDegradedForwardNeedsValidDst(t *testing.T) {
	network := netsim.NewNetwork()
	node := newTestSN(t, network, "fd00::5")
	err := node.Register(failModule{}, WithDegradedForward(wire.Addr{}))
	if err == nil {
		t.Fatal("registration with invalid degraded destination succeeded")
	}
}

// TestControlHealthOp: the SN itself answers the control-plane "health"
// operation, for all modules or one target service, without requiring the
// module to implement a control handler.
func TestControlHealthOp(t *testing.T) {
	network := netsim.NewNetwork()
	node := newTestSN(t, network, "fd00::5")
	if err := node.Register(failModule{}); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, network, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return node.Counters().ModuleErrors == 1 })

	query := func(target wire.ServiceID) ControlResponse {
		t.Helper()
		req, _ := json.Marshal(ControlRequest{Target: target, Op: "health"})
		if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcControl, Conn: 77}, req); err != nil {
			t.Fatal(err)
		}
		got := cl.await(t)
		var resp ControlResponse
		if err := json.Unmarshal(got.payload, &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// All modules.
	resp := query(wire.SvcNone)
	if !resp.OK {
		t.Fatalf("health(all) error: %s", resp.Error)
	}
	var all []ModuleHealth
	if err := json.Unmarshal(resp.Data, &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].Service != wire.SvcNull || all[0].Errored < 1 {
		t.Fatalf("health(all) = %+v", all)
	}

	// One target service.
	resp = query(wire.SvcNull)
	if !resp.OK {
		t.Fatalf("health(SvcNull) error: %s", resp.Error)
	}
	var one ModuleHealth
	if err := json.Unmarshal(resp.Data, &one); err != nil {
		t.Fatal(err)
	}
	if one.Name != "fail" || one.Errored < 1 || one.State != BreakerClosed.String() {
		t.Fatalf("health(SvcNull) = %+v", one)
	}

	// Unregistered target errors.
	if resp = query(wire.SvcVPN); resp.OK || resp.Error == "" {
		t.Fatalf("health(unregistered) = %+v", resp)
	}
}

// TestInjectUnregisteredService: Inject runs the terminus synchronously, so
// a packet for an unregistered service is counted as a no-module drop.
func TestInjectUnregisteredService(t *testing.T) {
	network := netsim.NewNetwork()
	node := newTestSN(t, network, "fd00::5")
	node.Inject(wire.MustAddr("fd00::9"), wire.ILPHeader{Service: wire.SvcMixnet, Conn: 1}, []byte("x"))
	c := node.Counters()
	if c.NoModuleDrops != 1 || c.RxPackets != 1 {
		t.Fatalf("NoModuleDrops=%d RxPackets=%d, want 1/1", c.NoModuleDrops, c.RxPackets)
	}
}

// TestEnclaveErrorPropagation: a module error raised inside the enclave
// boundary must come back out as a module error, not as a codec failure.
func TestEnclaveErrorPropagation(t *testing.T) {
	network := netsim.NewNetwork()
	node := newTestSN(t, network, "fd00::5")
	if err := node.Register(failModule{}, WithEnclave()); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, network, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcNull, Conn: 1}, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		h := moduleHealth(t, node, wire.SvcNull)
		return node.Counters().ModuleErrors == 1 && h.Errored == 1 && h.Panics == 0
	})
}

// TestChanInvokerCloseRace: closing the channel invoker while invocations
// are in flight must neither panic (the historical send-on-closed-channel
// bug) nor strand a caller; late invokes fail fast. Run with -race.
func TestChanInvokerCloseRace(t *testing.T) {
	h := func(pkt *Packet) (*Decision, error) { return &Decision{}, nil }
	for iter := 0; iter < 25; iter++ {
		ci := newChanInvoker(h, 2)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				for j := 0; j < 64; j++ {
					if _, err := ci.invoke(&Packet{}); err != nil {
						if !errors.Is(err, errInvokerClosed) {
							t.Errorf("invoke during close: %v", err)
						}
						return
					}
				}
			}()
		}
		close(start)
		ci.close()
		wg.Wait()
		if _, err := ci.invoke(&Packet{}); !errors.Is(err, errInvokerClosed) {
			t.Fatalf("invoke after close = %v, want errInvokerClosed", err)
		}
	}
}

// funcInvoker adapts a function to the invoker interface for dispatcher
// unit tests.
type funcInvoker struct {
	fn func(*Packet) (*Decision, error)
}

func (f *funcInvoker) invoke(pkt *Packet) (*Decision, error) { return f.fn(pkt) }
func (f *funcInvoker) close() error                          { return nil }

// TestDispatcherErrorAndShedAccounting exercises the dispatcher directly:
// failed invocations hit onError and the error counter, and once the
// breaker opens, packets divert to the degrade callback and the shed
// counter without invoking the module.
func TestDispatcherErrorAndShedAccounting(t *testing.T) {
	manual := clock.NewManual(time.Unix(0, 0))
	var invokes, onErrs, degraded atomic.Uint64
	inv := &funcInvoker{fn: func(*Packet) (*Decision, error) {
		invokes.Add(1)
		return nil, errors.New("bad")
	}}
	d := newDispatcher(inv, dispatcherConfig{
		workers: 1,
		depth:   8,
		clk:     manual,
		brk:     newBreaker(2, time.Minute, manual),
		apply:   func(*Packet, *Decision) {},
		onError: func(_ *Packet, err error) { onErrs.Add(1) },
		degrade: func(*Packet) { degraded.Add(1) },
	})
	defer d.close()

	for i := 0; i < 2; i++ {
		if !d.submit(&Packet{}) {
			t.Fatal("submit refused")
		}
	}
	waitFor(t, func() bool { return onErrs.Load() == 2 })
	if d.errored.Load() != 2 {
		t.Fatalf("errored = %d, want 2", d.errored.Load())
	}
	// Breaker open: further packets shed without invoking the module.
	for i := 0; i < 3; i++ {
		if !d.submit(&Packet{}) {
			t.Fatal("submit refused")
		}
	}
	waitFor(t, func() bool { return d.shed.Load() == 3 && degraded.Load() == 3 })
	if invokes.Load() != 2 {
		t.Fatalf("module invoked %d times, want 2 (shed packets must not invoke)", invokes.Load())
	}
}

// fakeIPCModuleServer accepts connections on l and serves framed exchanges
// with serve(connIndex, requestBody) choosing each response body.
func fakeIPCModuleServer(l net.Listener, serve func(connIdx uint64, req []byte) (resp []byte, dropConn bool)) {
	var conns atomic.Uint64
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		idx := conns.Add(1)
		go func(c net.Conn) {
			defer c.Close()
			var lenBuf [4]byte
			for {
				if _, err := io.ReadFull(c, lenBuf[:]); err != nil {
					return
				}
				body := make([]byte, binary.BigEndian.Uint32(lenBuf[:]))
				if _, err := io.ReadFull(c, body); err != nil {
					return
				}
				resp, drop := serve(idx, body)
				if drop {
					return
				}
				binary.BigEndian.PutUint32(lenBuf[:], uint32(len(resp)))
				if _, err := c.Write(lenBuf[:]); err != nil {
					return
				}
				if _, err := c.Write(resp); err != nil {
					return
				}
			}
		}(c)
	}
}

// newTestIPCInvoker builds an ipcInvoker against a test-owned module server
// (so the test controls the response bytes) instead of the built-in one.
func newTestIPCInvoker(t *testing.T, clk clock.Clock, serve func(connIdx uint64, req []byte) ([]byte, bool)) (*ipcInvoker, *atomic.Uint64) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "mod.sock")
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	go fakeIPCModuleServer(l, serve)
	var restarts atomic.Uint64
	inv := &ipcInvoker{
		sockPath:    sock,
		listener:    l,
		clk:         clk,
		retry:       pipe.NewBackoff(time.Millisecond, 8*time.Millisecond, 1),
		logf:        func(string, ...any) {},
		notePanic:   func(any) {},
		noteRestart: func() { restarts.Add(1) },
		stop:        make(chan struct{}),
		serverDone:  make(chan struct{}),
	}
	// The accept loop is test-owned; close() must not wait for one.
	close(inv.serverDone)
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	inv.conn = conn
	t.Cleanup(func() { inv.close() })
	return inv, &restarts
}

// TestIPCDecodeFailureResync: a response frame that arrives but fails to
// decode means the stream offset can't be trusted. The invoker must close
// the poisoned connection and redial, not return it to the pool.
func TestIPCDecodeFailureResync(t *testing.T) {
	validDec, err := encodeDecision([]byte{0}, &Decision{})
	if err != nil {
		t.Fatal(err)
	}
	// Status byte 0 ("ok") followed by an undecodable body: the first
	// connection poisons the stream, later connections answer correctly.
	inv, restarts := newTestIPCInvoker(t, clock.Real{}, func(connIdx uint64, _ []byte) ([]byte, bool) {
		if connIdx == 1 {
			return []byte{0, 0xff, 0xff}, false
		}
		return validDec, false
	})
	pkt := &Packet{Src: wire.MustAddr("fd00::1"), Hdr: wire.ILPHeader{Service: wire.SvcNull, Conn: 1}}
	_, err = inv.invoke(pkt)
	if err == nil || !strings.Contains(err.Error(), "decode") {
		t.Fatalf("invoke on undecodable response = %v, want decode failure", err)
	}
	inv.mu.Lock()
	pooled := inv.conn != nil
	inv.mu.Unlock()
	if pooled {
		t.Fatal("poisoned connection left in the pool")
	}
	waitFor(t, func() bool { return restarts.Load() == 1 })
	if _, err := inv.invoke(pkt); err != nil {
		t.Fatalf("invoke after resync: %v", err)
	}
}

// TestIPCRestartingFastFail: while the module server is down and the
// redial is pending, invocations fail fast with ErrModuleRestarting
// instead of blocking a dispatcher worker.
func TestIPCRestartingFastFail(t *testing.T) {
	// Manual clock: the redial timer never fires, so the server stays down
	// for the whole test.
	manual := clock.NewManual(time.Unix(0, 0))
	inv, restarts := newTestIPCInvoker(t, manual, func(uint64, []byte) ([]byte, bool) {
		return nil, true // crash on the first request: drop the connection
	})
	pkt := &Packet{Src: wire.MustAddr("fd00::1"), Hdr: wire.ILPHeader{Service: wire.SvcNull, Conn: 1}}
	if _, err := inv.invoke(pkt); err == nil {
		t.Fatal("invoke on crashed server succeeded")
	}
	if _, err := inv.invoke(pkt); !errors.Is(err, ErrModuleRestarting) {
		t.Fatalf("invoke while down = %v, want ErrModuleRestarting", err)
	}
	if restarts.Load() != 0 {
		t.Fatalf("restarts = %d with frozen clock", restarts.Load())
	}
}
