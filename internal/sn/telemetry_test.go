package sn

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"interedge/internal/cryptutil"
	"interedge/internal/edomain"
	"interedge/internal/lookup"
	"interedge/internal/netsim"
	"interedge/internal/telemetry"
	"interedge/internal/wire"
)

// TestControlMetricsOp: the SN answers the control-plane "metrics"
// operation with one snapshot of the node registry covering every layer —
// sn_*, pipe_*, cache_*, and per-module sn_module_* instruments.
func TestControlMetricsOp(t *testing.T) {
	network := netsim.NewNetwork()
	node := newTestSN(t, network, "fd00::5")
	mod := &echoModule{installRule: true}
	if err := node.Register(mod); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, network, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	// One slow-path round trip so the counters have something to show.
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcEcho, Conn: 1}, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	cl.await(t)

	req, _ := json.Marshal(ControlRequest{Target: wire.SvcNone, Op: "metrics"})
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcControl, Conn: 9}, req); err != nil {
		t.Fatal(err)
	}
	got := cl.await(t)
	var resp ControlResponse
	if err := json.Unmarshal(got.payload, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("metrics op error: %s", resp.Error)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(resp.Data, &snap); err != nil {
		t.Fatal(err)
	}
	// One instrument per layer proves the snapshot spans the whole node.
	for _, name := range []string{
		"sn_rx_packets_total",
		"pipe_handshake_attempts_total",
		"pipe_peers",
		"cache_misses_total",
		`sn_module_handled_total{module="echo"}`,
		"sn_fastpath_service_ns",
	} {
		if _, ok := snap.Get(name); !ok {
			t.Fatalf("snapshot missing %s; have %d samples", name, len(snap))
		}
	}
	if v := snap.Value("sn_rx_packets_total"); v < 2 {
		t.Errorf("sn_rx_packets_total = %v, want >= 2", v)
	}
	if v := snap.Value(`sn_module_handled_total{module="echo"}`); v < 1 {
		t.Errorf("module handled = %v, want >= 1", v)
	}
	if v := snap.Value("cache_misses_total"); v < 1 {
		t.Errorf("cache_misses_total = %v, want >= 1", v)
	}
	// The snapshot renders as valid exposition text.
	if s := snap.String(); !strings.Contains(s, "# TYPE sn_rx_packets_total counter") {
		t.Errorf("exposition text missing TYPE line:\n%s", s)
	}
}

// TestControlMetricsOpPinsDrainInstruments pins the names of the
// placement/drain/failover instruments: every operator dashboard and soak
// gate addresses them by name through the control-plane "metrics" op, so a
// rename is a breaking change this test catches. The ring-change counter
// is sourced from an edomain core the way lab.NewPlacement registers it
// on the gateway node.
func TestControlMetricsOpPinsDrainInstruments(t *testing.T) {
	network := netsim.NewNetwork()
	node := newTestSN(t, network, "fd00::5")
	core := edomain.New("ed-pin", lookup.New())
	core.RegisterSN(node.Addr())
	if err := node.Telemetry().Register(
		telemetry.NewCounterFunc("edomain_ring_changes_total", core.RingChanges)); err != nil {
		t.Fatal(err)
	}
	if err := node.Telemetry().Register(
		telemetry.NewCounterFunc("edomain_ring_watch_dropped_total", core.RingWatchDrops)); err != nil {
		t.Fatal(err)
	}

	cl := newClient(t, network, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	req, _ := json.Marshal(ControlRequest{Target: wire.SvcNone, Op: "metrics"})
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcControl, Conn: 9}, req); err != nil {
		t.Fatal(err)
	}
	got := cl.await(t)
	var resp ControlResponse
	if err := json.Unmarshal(got.payload, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("metrics op error: %s", resp.Error)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(resp.Data, &snap); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"edomain_ring_changes_total",
		"edomain_ring_watch_dropped_total",
		"sn_drain_started_total",
		"sn_drain_completed_total",
		"sn_drain_aborted_total",
		"sn_handoff_pipes_total",
		"sn_failovers_total",
		"sn_drain_duration_ns",
	} {
		if _, ok := snap.Get(name); !ok {
			t.Errorf("metrics op snapshot missing %s", name)
		}
	}
	// The ring-change counter reads through to the core: registration
	// already counted one Down→Active transition.
	if v := snap.Value("edomain_ring_changes_total"); v < 1 {
		t.Errorf("edomain_ring_changes_total = %v, want >= 1", v)
	}
}

// TestTraceHooks: a configured trace hook observes each packet's path
// through the pipe-terminus — rx, slow path on the first packet, fast path
// plus forward once the module's rule is installed.
func TestTraceHooks(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[telemetry.TracePoint]int)
	network := netsim.NewNetwork()
	node := newTestSN(t, network, "fd00::5", func(c *Config) {
		c.Trace = func(ev telemetry.PacketTrace) {
			mu.Lock()
			seen[ev.Point]++
			mu.Unlock()
		}
	})
	if err := node.Register(&echoModule{installRule: true}); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, network, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	// First packet takes the slow path and installs a forward rule; the
	// second hits the cache and forwards on the fast path.
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcEcho, Conn: 1}, []byte("a")); err != nil {
		t.Fatal(err)
	}
	cl.await(t)
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcEcho, Conn: 1}, []byte("b")); err != nil {
		t.Fatal(err)
	}
	cl.await(t)

	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return seen[telemetry.TraceRx] >= 2 &&
			seen[telemetry.TraceSlowPath] >= 1 &&
			seen[telemetry.TraceFastPath] >= 1 &&
			seen[telemetry.TraceForward] >= 1
	})

	// The fast-path histogram recorded the hit.
	smp, ok := node.Telemetry().Snapshot().Get("sn_fastpath_service_ns")
	if !ok || smp.Hist == nil || smp.Hist.Count < 1 {
		t.Fatalf("sn_fastpath_service_ns = %+v, want >= 1 observation", smp)
	}
}

// TestControlMetricsOpExposesLookupCounters: a lookup service whose
// instruments are registered into a node's registry surfaces its
// lookup_* counters through the same control-plane "metrics" op as the
// node's own layers — the directory is scraped like any other subsystem.
func TestControlMetricsOpExposesLookupCounters(t *testing.T) {
	network := netsim.NewNetwork()
	node := newTestSN(t, network, "fd00::5")
	svc := lookup.New()
	svc.RegisterTelemetry(node.Telemetry())
	owner, err := cryptutil.NewSigningKeypair()
	if err != nil {
		t.Fatal(err)
	}
	addr := wire.MustAddr("fd00::a1")
	sns := []wire.Addr{node.Addr()}
	rec := lookup.AddrRecord{Addr: addr, Owner: owner.Public, SNs: sns}
	if err := svc.RegisterAddress(rec, lookup.SignAddrRecord(owner, addr, sns)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.ResolveAddress(addr); err != nil {
		t.Fatal(err)
	}

	cl := newClient(t, network, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	req, _ := json.Marshal(ControlRequest{Target: wire.SvcNone, Op: "metrics"})
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcControl, Conn: 9}, req); err != nil {
		t.Fatal(err)
	}
	got := cl.await(t)
	var resp ControlResponse
	if err := json.Unmarshal(got.payload, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.OK {
		t.Fatalf("metrics op error: %s", resp.Error)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(resp.Data, &snap); err != nil {
		t.Fatal(err)
	}
	if v := snap.Value("lookup_registrations_total"); v < 1 {
		t.Errorf("lookup_registrations_total = %v, want >= 1", v)
	}
	if v := snap.Value("lookup_resolves_total"); v < 1 {
		t.Errorf("lookup_resolves_total = %v, want >= 1", v)
	}
	if _, ok := snap.Get("lookup_records"); !ok {
		t.Error("snapshot missing lookup_records gauge")
	}
}
