package sn

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"interedge/internal/netsim"
	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// statefulModule emulates a service that (per App B.2) keeps internal
// decisions and can recompute them after arbitrary cache eviction. It
// forwards every flow back to its source and installs a rule.
type statefulModule struct {
	recomputes atomic.Uint64
}

func (m *statefulModule) Service() wire.ServiceID { return wire.SvcEcho }
func (m *statefulModule) Name() string            { return "stateful" }
func (m *statefulModule) Version() string         { return "1" }
func (m *statefulModule) HandlePacket(env Env, pkt *Packet) (Decision, error) {
	m.recomputes.Add(1)
	return Decision{
		Forwards: []Forward{{Dst: pkt.Src}},
		Rules: []Rule{{
			Key:    pkt.Key(),
			Action: cache.Action{Forward: []wire.Addr{pkt.Src}},
		}},
	}, nil
}

// Appendix B.1's correctness requirement under eviction pressure: a cache
// far smaller than the flow count must never misroute — every packet still
// comes back to its own sender, with the module recomputing evicted
// decisions.
func TestEvictionStormCorrectness(t *testing.T) {
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5", func(c *Config) {
		c.CacheSize = 8 // tiny: constant eviction with 64 flows
	})
	mod := &statefulModule{}
	if err := node.Register(mod, WithQueueDepth(4096)); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, net, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}

	const flows = 64
	const rounds = 20
	for r := 0; r < rounds; r++ {
		for f := 0; f < flows; f++ {
			hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: wire.ConnectionID(f)}
			if err := cl.mgr.Send(node.Addr(), &hdr, []byte{byte(f)}); err != nil {
				t.Fatal(err)
			}
		}
		// Drain this round before the next, keeping queues bounded.
		for i := 0; i < flows; i++ {
			got := cl.await(t)
			// The packet's flow tag must match its connection ID: no
			// cross-flow misrouting despite constant eviction.
			if wire.ConnectionID(got.payload[0]) != got.hdr.Conn {
				t.Fatalf("flow %d received packet tagged %d", got.hdr.Conn, got.payload[0])
			}
		}
	}
	st := node.Cache().Snapshot()
	if st.Evictions == 0 {
		t.Fatal("test did not exercise eviction")
	}
	if mod.recomputes.Load() <= flows {
		t.Fatalf("module recomputed only %d times; eviction should force recomputation", mod.recomputes.Load())
	}
	if st.Size > 8 {
		t.Fatalf("cache size %d over capacity", st.Size)
	}
}

// A lossy substrate drops packets but never corrupts delivery: everything
// that arrives is intact and correctly demultiplexed.
func TestLossyPipeIntegrity(t *testing.T) {
	net := netsim.NewNetwork(netsim.WithSeed(11))
	node := newTestSN(t, net, "fd00::5")
	if err := node.Register(&echoModule{}); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, net, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	// 30% loss both ways AFTER the handshake.
	net.SetLinkBoth(cl.addr, node.Addr(), netsim.LinkProfile{LossRate: 0.3})

	const sent = 300
	for i := 0; i < sent; i++ {
		hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 1, Data: []byte(fmt.Sprintf("m-%d", i))}
		if err := cl.mgr.Send(node.Addr(), &hdr, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	received := 0
	timeout := time.After(5 * time.Second)
drain:
	for {
		select {
		case got := <-cl.rx:
			// Echo reverses payload; reverse back and check prefix.
			rev := make([]byte, len(got.payload))
			for i, b := range got.payload {
				rev[len(rev)-1-i] = b
			}
			if string(rev[:8]) != "payload-" {
				t.Fatalf("corrupted payload %q", rev)
			}
			received++
		case <-timeout:
			break drain
		default:
			if received > 0 {
				select {
				case got := <-cl.rx:
					_ = got
					received++
					continue
				case <-time.After(300 * time.Millisecond):
					break drain
				}
			}
			time.Sleep(time.Millisecond)
		}
	}
	// With ~30% loss each way, roughly half survive; the exact count is
	// seeded. It must be substantial but below the send count.
	if received == 0 || received >= sent {
		t.Fatalf("received %d of %d under loss", received, sent)
	}
	t.Logf("received %d/%d under 30%% bidirectional loss", received, sent)
}

// TestShardedTerminusPerSourceOrdering runs the no-service fast path (the
// Table 1 "no-service" row) through an SN with a wide receive pipeline:
// several ingress hosts stream numbered packets that pre-installed cache
// rules forward to one egress host. Sharding by source must deliver every
// ingress stream in order even though streams are processed on different
// terminus workers.
func TestShardedTerminusPerSourceOrdering(t *testing.T) {
	const senders = 4
	const perSender = 250
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5", func(c *Config) {
		c.RxWorkers = 4
	})
	egress := newClient(t, net, "fd00::e")
	if err := egress.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}

	ingress := make([]*client, senders)
	for i := range ingress {
		ingress[i] = newClient(t, net, fmt.Sprintf("fd00::%x", i+1))
		if err := ingress[i].mgr.Connect(node.Addr()); err != nil {
			t.Fatal(err)
		}
		// Pre-install the fast-path rule, as the bench harness does: every
		// packet from this ingress rides the cache-hit path.
		node.Cache().Add(
			wire.FlowKey{Src: ingress[i].addr, Service: wire.SvcNone, Conn: wire.ConnectionID(i)},
			cache.Action{Forward: []wire.Addr{egress.addr}},
		)
	}

	var wg sync.WaitGroup
	for i, cl := range ingress {
		wg.Add(1)
		go func(i int, cl *client) {
			defer wg.Done()
			payload := make([]byte, 8)
			hdr := wire.ILPHeader{Service: wire.SvcNone, Conn: wire.ConnectionID(i)}
			for seq := 0; seq < perSender; seq++ {
				binary.BigEndian.PutUint64(payload, uint64(seq))
				if err := cl.mgr.Send(node.Addr(), &hdr, payload); err != nil {
					t.Errorf("ingress %d send: %v", i, err)
					return
				}
			}
		}(i, cl)
	}

	lastSeq := make(map[wire.ConnectionID]uint64)
	for got := 0; got < senders*perSender; got++ {
		select {
		case pkt := <-egress.rx:
			seq := binary.BigEndian.Uint64(pkt.payload)
			if last, seen := lastSeq[pkt.hdr.Conn]; seen && seq != last+1 {
				t.Fatalf("ingress %d: seq %d after %d (reordered through terminus)", pkt.hdr.Conn, seq, last)
			}
			lastSeq[pkt.hdr.Conn] = seq
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out after %d/%d packets", got, senders*perSender)
		}
	}
	wg.Wait()
	if hits := node.Cache().Snapshot().Hits; hits < uint64(senders*perSender) {
		t.Errorf("cache hits = %d, want >= %d (all packets on the fast path)", hits, senders*perSender)
	}
}

// Many concurrent flows through the IPC transport: the serialization
// mutex and framed protocol must stay consistent under parallelism.
func TestIPCTransportConcurrentFlows(t *testing.T) {
	net := netsim.NewNetwork()
	node := newTestSN(t, net, "fd00::5")
	if err := node.Register(&echoModule{}, WithTransport(TransportIPC), WithWorkers(4), WithQueueDepth(1024)); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, net, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: wire.ConnectionID(i % 7)}
		if err := cl.mgr.Send(node.Addr(), &hdr, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		cl.await(t)
	}
}
