package sn

import (
	"crypto/ed25519"
	"sync/atomic"
	"testing"
	"time"

	"interedge/internal/netsim"
	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// fwdModule installs a cache rule forwarding the flow to a fixed next hop
// and forwards the triggering packet there too.
type fwdModule struct {
	dst wire.Addr
}

func (fwdModule) Service() wire.ServiceID { return wire.SvcEcho }
func (fwdModule) Name() string            { return "fwd" }
func (fwdModule) Version() string         { return "1" }
func (m fwdModule) HandlePacket(env Env, pkt *Packet) (Decision, error) {
	return Decision{
		Rules:    []Rule{{Key: pkt.Key(), Action: cache.Action{Forward: []wire.Addr{m.dst}}}},
		Forwards: []Forward{{Dst: m.dst}},
	}, nil
}

func TestPeerDownInvalidatesDecisionCache(t *testing.T) {
	net := netsim.NewNetwork()
	var downs atomic.Int32
	node := newTestSN(t, net, "fd00::5", func(c *Config) {
		c.KeepaliveInterval = 20 * time.Millisecond
		c.DisableAutoConnect = true // no redial: the peer stays gone
		c.OnPeerDown = func(wire.Addr, ed25519.PublicKey) { downs.Add(1) }
	})
	if err := node.Register(&echoModule{installRule: true}); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, net, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcEcho, Conn: 7}, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	cl.await(t)
	deadline := time.Now().Add(2 * time.Second)
	for node.Cache().Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("module never installed a cache rule")
		}
		time.Sleep(time.Millisecond)
	}

	// Sever the client. The SN's keepalives go unanswered, dead-peer
	// detection fires, and every decision for flows through the client
	// must leave the cache.
	net.Partition(cl.addr, node.Addr())
	deadline = time.Now().Add(2 * time.Second)
	for node.Cache().Len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("cache still holds %d entries after peer death", node.Cache().Len())
		}
		time.Sleep(time.Millisecond)
	}
	if got := node.Counters().PeersLost; got != 1 {
		t.Fatalf("PeersLost = %d, want 1", got)
	}
	if downs.Load() != 1 {
		t.Fatalf("chained OnPeerDown fired %d times, want 1", downs.Load())
	}
}

func TestForwardRequeuesWhileEstablishing(t *testing.T) {
	net := netsim.NewNetwork()
	next := newClient(t, net, "fd00::2") // next hop with no pipe yet
	node := newTestSN(t, net, "fd00::5")
	if err := node.Register(fwdModule{dst: next.addr}); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, net, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	// No pipe SN→next exists: the forward must be requeued, a handshake
	// performed, and the packet flushed — not dropped.
	if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcEcho, Conn: 1}, []byte("through")); err != nil {
		t.Fatal(err)
	}
	got := next.await(t)
	if string(got.payload) != "through" {
		t.Fatalf("payload %q, want %q", got.payload, "through")
	}
	ctr := node.Counters()
	if ctr.Requeued == 0 {
		t.Fatal("Requeued counter is zero")
	}
	if ctr.RequeueDrops != 0 {
		t.Fatalf("RequeueDrops = %d, want 0", ctr.RequeueDrops)
	}
	if ctr.Forwarded == 0 {
		t.Fatal("Forwarded counter is zero")
	}
}

func TestRequeueDepthBoundsMemory(t *testing.T) {
	net := netsim.NewNetwork()
	dead := wire.MustAddr("fd00::dead") // never attached: handshake must fail
	node := newTestSN(t, net, "fd00::5", func(c *Config) {
		c.RequeueDepth = 2
		c.HandshakeTimeout = 20 * time.Millisecond
		c.HandshakeRetries = 3
	})
	if err := node.Register(fwdModule{dst: dead}); err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, net, "fd00::1")
	if err := cl.mgr.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if err := cl.mgr.Send(node.Addr(), &wire.ILPHeader{Service: wire.SvcEcho, Conn: 1}, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for node.Counters().RequeueDrops == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never overflowed: %+v", node.Counters())
		}
		time.Sleep(time.Millisecond)
	}
	if got := node.Counters().Requeued; got > 64 {
		t.Fatalf("Requeued = %d, exceeds sends", got)
	}
}
