// Package peering implements inter-edomain connectivity (§3.2): every
// edomain peers directly with every other edomain over a long-lived ILP
// pipe between designated gateway SNs, each SN knows which local SN
// reaches each foreign edomain, and — per §5 — all of this is
// settlement-free: the ledger records traffic between edomains and the
// invariant that no money changes hands.
//
// Transit packets are encapsulated under the SvcPeering service ID: the
// ILP header's service data carries the final destination SN and original
// source, and the payload carries the inner ILP header plus inner payload.
// Gateways install decision-cache rules for transit flows, so steady-state
// inter-edomain forwarding runs on the fast path.
package peering

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"interedge/internal/lookup"
	"interedge/internal/sn"
	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// EdomainID aliases lookup.EdomainID.
type EdomainID = lookup.EdomainID

// Errors returned by the fabric.
var (
	ErrUnknownEdomain = errors.New("peering: address not in any known edomain")
	ErrNoGateway      = errors.New("peering: no gateway pair for edomain pair")
	ErrBadTransit     = errors.New("peering: malformed transit encapsulation")
)

type edomainInfo struct {
	id       EdomainID
	gateways []wire.Addr
	sns      map[wire.Addr]struct{}
}

type pairKey struct{ lo, hi EdomainID }

func mkPair(a, b EdomainID) pairKey {
	if a < b {
		return pairKey{a, b}
	}
	return pairKey{b, a}
}

// gatewayPair records the SN on each side of one edomain-pair pipe.
type gatewayPair struct {
	gw map[EdomainID]wire.Addr
}

// TransferRecord is one edomain pair's traffic tally.
type TransferRecord struct {
	From    EdomainID
	To      EdomainID
	Packets uint64
	Bytes   uint64
	// FeesOwed is the money owed for this traffic. Per §5 peering between
	// edomains is settlement-free, so this is always zero; it exists so
	// audits can assert the invariant.
	FeesOwed uint64
}

// routeView is the immutable routing state packet-path reads consult:
// the gateway-pair table plus the direct-connect flag. Topology writes
// republish it atomically (RCU), so NextHop and the gateway lookups are
// lock-free on every SN while registrations serialize behind the write
// mutex — the same snapshot-read contract as the lookup service.
type routeView struct {
	pairs map[pairKey]gatewayPair
	// directConnect enables the §3.2 optimization: SNs may "establish,
	// on demand, a connection directly to the destination's associated
	// SN in another edomain" instead of routing via gateways.
	directConnect bool
}

// Fabric is the global view of edomain peering used by SNs and services.
// In a production deployment each edomain would hold its slice of this
// state; the simulator shares one fabric the way it shares the substrate.
type Fabric struct {
	mu       sync.Mutex // serializes topology writes
	edomains map[EdomainID]*edomainInfo

	// byAddr maps every registered address to its edomain. Written only
	// under mu; probed lock-free by EdomainOf on the packet path.
	byAddr sync.Map // wire.Addr -> EdomainID
	routes atomic.Pointer[routeView]

	// The settlement ledger is write-heavy (one tally per transit
	// packet on the slow path) and shares no state with routing, so it
	// contends on its own lock.
	ledgerMu sync.Mutex
	ledger   map[pairKey]*ledgerEntry
}

type ledgerEntry struct {
	packets map[EdomainID]uint64 // keyed by the sending edomain
	bytes   map[EdomainID]uint64
}

// NewFabric creates an empty fabric.
func NewFabric() *Fabric {
	f := &Fabric{
		edomains: make(map[EdomainID]*edomainInfo),
		ledger:   make(map[pairKey]*ledgerEntry),
	}
	f.routes.Store(&routeView{pairs: make(map[pairKey]gatewayPair)})
	return f
}

// publishRoutesLocked clones the current route view, applies mutate, and
// swaps the result in. Caller holds mu.
func (f *Fabric) publishRoutesLocked(mutate func(*routeView)) {
	old := f.routes.Load()
	next := &routeView{
		pairs:         make(map[pairKey]gatewayPair, len(old.pairs)+1),
		directConnect: old.directConnect,
	}
	for k, v := range old.pairs {
		next.pairs[k] = v
	}
	mutate(next)
	f.routes.Store(next)
}

// SetDirectConnect toggles the direct SN-to-SN optimization.
func (f *Fabric) SetDirectConnect(on bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.publishRoutesLocked(func(v *routeView) { v.directConnect = on })
}

// DirectConnect reports whether the optimization is enabled. Lock-free.
func (f *Fabric) DirectConnect() bool {
	return f.routes.Load().directConnect
}

// AddEdomain registers an edomain with its gateway SNs (which are also
// registered as member SNs).
func (f *Fabric) AddEdomain(id EdomainID, gateways ...wire.Addr) error {
	if len(gateways) == 0 {
		return fmt.Errorf("peering: edomain %s needs at least one gateway", id)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.edomains[id]; ok {
		return fmt.Errorf("peering: edomain %s already registered", id)
	}
	info := &edomainInfo{id: id, gateways: append([]wire.Addr(nil), gateways...), sns: make(map[wire.Addr]struct{})}
	for _, g := range gateways {
		info.sns[g] = struct{}{}
		f.byAddr.Store(g, id)
	}
	f.edomains[id] = info
	return nil
}

// RegisterAddr places an SN or host address inside an edomain (hosts
// "reside in" the edomain of their first-hop SN, §3.1).
func (f *Fabric) RegisterAddr(id EdomainID, addr wire.Addr) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	info, ok := f.edomains[id]
	if !ok {
		return fmt.Errorf("peering: unknown edomain %s", id)
	}
	info.sns[addr] = struct{}{}
	f.byAddr.Store(addr, id)
	return nil
}

// EdomainOf returns the edomain containing addr. Lock-free: it runs for
// every transit packet that reaches a gateway's slow path.
func (f *Fabric) EdomainOf(addr wire.Addr) (EdomainID, bool) {
	v, ok := f.byAddr.Load(addr)
	if !ok {
		return "", false
	}
	return v.(EdomainID), true
}

// Edomains lists registered edomains.
func (f *Fabric) Edomains() []EdomainID {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]EdomainID, 0, len(f.edomains))
	for id := range f.edomains {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GatewayOf returns the designated gateway SN of fromEd for traffic toward
// toEd. Lock-free.
func (f *Fabric) GatewayOf(fromEd, toEd EdomainID) (wire.Addr, error) {
	pair, ok := f.routes.Load().pairs[mkPair(fromEd, toEd)]
	if !ok {
		return wire.Addr{}, fmt.Errorf("%w: %s<->%s", ErrNoGateway, fromEd, toEd)
	}
	return pair.gw[fromEd], nil
}

// RemoteGatewayOf returns the gateway SN on toEd's side of the
// fromEd<->toEd pipe — the entry point for traffic fanned into toEd.
// Lock-free.
func (f *Fabric) RemoteGatewayOf(fromEd, toEd EdomainID) (wire.Addr, error) {
	pair, ok := f.routes.Load().pairs[mkPair(fromEd, toEd)]
	if !ok {
		return wire.Addr{}, fmt.Errorf("%w: %s<->%s", ErrNoGateway, fromEd, toEd)
	}
	return pair.gw[toEd], nil
}

// EstablishMesh creates the required full mesh: for every pair of
// edomains, designate one gateway SN on each side and invoke connect to
// bring up the long-lived pipe ("we require that every edomain peers
// directly with all other edomains via an ILP connection", §3.2).
func (f *Fabric) EstablishMesh(connect func(a, b wire.Addr) error) error {
	f.mu.Lock()
	existing := f.routes.Load().pairs
	ids := make([]EdomainID, 0, len(f.edomains))
	for id := range f.edomains {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	type job struct {
		key  pairKey
		a, b wire.Addr
	}
	var jobs []job
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			key := mkPair(ids[i], ids[j])
			if _, done := existing[key]; done {
				continue
			}
			// Spread load across gateways deterministically.
			gi := f.edomains[ids[i]]
			gj := f.edomains[ids[j]]
			a := gi.gateways[j%len(gi.gateways)]
			b := gj.gateways[i%len(gj.gateways)]
			jobs = append(jobs, job{key: key, a: a, b: b})
		}
	}
	f.mu.Unlock()

	for _, jb := range jobs {
		if err := connect(jb.a, jb.b); err != nil {
			return fmt.Errorf("peering: connect %s<->%s: %w", jb.a, jb.b, err)
		}
		edA, _ := f.EdomainOf(jb.a)
		edB, _ := f.EdomainOf(jb.b)
		f.mu.Lock()
		f.publishRoutesLocked(func(v *routeView) {
			v.pairs[jb.key] = gatewayPair{gw: map[EdomainID]wire.Addr{edA: jb.a, edB: jb.b}}
		})
		f.mu.Unlock()
	}
	return nil
}

// MeshComplete reports whether every edomain pair has a gateway pipe.
func (f *Fabric) MeshComplete() bool {
	f.mu.Lock()
	n := len(f.edomains)
	f.mu.Unlock()
	return len(f.routes.Load().pairs) == n*(n-1)/2
}

// NextHop computes where the SN at 'from' should send a transit packet
// bound for finalDst: stay inside the edomain, hop to the local gateway,
// cross the gateway pipe, or complete delivery. Lock-free: one route
// snapshot plus two byAddr probes, so every gateway's slow path decides
// without contending on fleet-shared state.
func (f *Fabric) NextHop(from, finalDst wire.Addr) (wire.Addr, error) {
	edFrom, ok := f.EdomainOf(from)
	if !ok {
		return wire.Addr{}, fmt.Errorf("%w: %s", ErrUnknownEdomain, from)
	}
	edDst, ok := f.EdomainOf(finalDst)
	if !ok {
		return wire.Addr{}, fmt.Errorf("%w: %s", ErrUnknownEdomain, finalDst)
	}
	if edFrom == edDst {
		return finalDst, nil
	}
	routes := f.routes.Load()
	if routes.directConnect {
		// §3.2 optimization: connect straight to the destination SN.
		return finalDst, nil
	}
	pair, ok := routes.pairs[mkPair(edFrom, edDst)]
	if !ok {
		return wire.Addr{}, fmt.Errorf("%w: %s<->%s", ErrNoGateway, edFrom, edDst)
	}
	localGW := pair.gw[edFrom]
	if from != localGW {
		return localGW, nil
	}
	return pair.gw[edDst], nil
}

// RecordTransfer tallies transit traffic crossing between two edomains.
func (f *Fabric) RecordTransfer(fromEd, toEd EdomainID, bytes int) {
	f.ledgerMu.Lock()
	defer f.ledgerMu.Unlock()
	key := mkPair(fromEd, toEd)
	e, ok := f.ledger[key]
	if !ok {
		e = &ledgerEntry{packets: make(map[EdomainID]uint64), bytes: make(map[EdomainID]uint64)}
		f.ledger[key] = e
	}
	e.packets[fromEd]++
	e.bytes[fromEd] += uint64(bytes)
}

// Ledger reports per-direction transfer records. FeesOwed is zero on every
// record: edomain peering is settlement-free by architecture (§5).
func (f *Fabric) Ledger() []TransferRecord {
	f.ledgerMu.Lock()
	defer f.ledgerMu.Unlock()
	var out []TransferRecord
	for key, e := range f.ledger {
		for _, dir := range []struct{ from, to EdomainID }{{key.lo, key.hi}, {key.hi, key.lo}} {
			if e.packets[dir.from] == 0 {
				continue
			}
			out = append(out, TransferRecord{
				From:     dir.from,
				To:       dir.to,
				Packets:  e.packets[dir.from],
				Bytes:    e.bytes[dir.from],
				FeesOwed: 0,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// --- Transit encapsulation ------------------------------------------------

// transitMeta is the SvcPeering header data: final destination SN and
// original source address.
const transitMetaSize = 32

// EncodeTransit builds the SvcPeering encapsulation of an inner packet.
func EncodeTransit(finalDst, origSrc wire.Addr, inner *wire.ILPHeader, innerPayload []byte) (svcData, payload []byte, err error) {
	svcData = make([]byte, transitMetaSize)
	d := finalDst.As16()
	s := origSrc.As16()
	copy(svcData[0:16], d[:])
	copy(svcData[16:32], s[:])

	innerHdr, err := inner.Encode()
	if err != nil {
		return nil, nil, err
	}
	payload = make([]byte, 2+len(innerHdr)+len(innerPayload))
	binary.BigEndian.PutUint16(payload[0:2], uint16(len(innerHdr)))
	copy(payload[2:], innerHdr)
	copy(payload[2+len(innerHdr):], innerPayload)
	return svcData, payload, nil
}

// DecodeTransitMeta parses the SvcPeering header data.
func DecodeTransitMeta(svcData []byte) (finalDst, origSrc wire.Addr, err error) {
	if len(svcData) != transitMetaSize {
		return wire.Addr{}, wire.Addr{}, ErrBadTransit
	}
	var d, s [16]byte
	copy(d[:], svcData[0:16])
	copy(s[:], svcData[16:32])
	return addrFrom16(d), addrFrom16(s), nil
}

// DecodeTransitPayload parses the inner packet from a transit payload.
func DecodeTransitPayload(payload []byte) (wire.ILPHeader, []byte, error) {
	if len(payload) < 2 {
		return wire.ILPHeader{}, nil, ErrBadTransit
	}
	hlen := int(binary.BigEndian.Uint16(payload[0:2]))
	if len(payload) < 2+hlen {
		return wire.ILPHeader{}, nil, ErrBadTransit
	}
	var hdr wire.ILPHeader
	if _, err := hdr.DecodeFromBytes(payload[2 : 2+hlen]); err != nil {
		return wire.ILPHeader{}, nil, err
	}
	return hdr, payload[2+hlen:], nil
}

// --- Forwarder module ------------------------------------------------------

// Injector re-inserts a decapsulated packet into the local SN's
// pipe-terminus.
type Injector func(src wire.Addr, hdr wire.ILPHeader, payload []byte)

// Forwarder is the SvcPeering service module deployed on every SN: it
// forwards transit packets along the gateway path and decapsulates them at
// the destination SN.
type Forwarder struct {
	fabric *Fabric
	inject Injector
}

// NewForwarder creates the peering forwarder for one SN.
func NewForwarder(fabric *Fabric, inject Injector) *Forwarder {
	return &Forwarder{fabric: fabric, inject: inject}
}

// Service implements sn.Module.
func (fw *Forwarder) Service() wire.ServiceID { return wire.SvcPeering }

// Name implements sn.Module.
func (fw *Forwarder) Name() string { return "peering-forwarder" }

// Version implements sn.Module.
func (fw *Forwarder) Version() string { return "1" }

// HandlePacket implements sn.Module.
func (fw *Forwarder) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	finalDst, origSrc, err := DecodeTransitMeta(pkt.Hdr.Data)
	if err != nil {
		return sn.Decision{}, err
	}
	local := env.LocalAddr()

	// Tally the edomain crossing for the settlement-free ledger.
	if edHere, ok := fw.fabric.EdomainOf(local); ok {
		if edSrc, ok2 := fw.fabric.EdomainOf(pkt.Src); ok2 && edSrc != edHere {
			fw.fabric.RecordTransfer(edSrc, edHere, len(pkt.Payload))
		}
	}

	if finalDst == local {
		innerHdr, innerPayload, err := DecodeTransitPayload(pkt.Payload)
		if err != nil {
			return sn.Decision{}, err
		}
		fw.inject(origSrc, innerHdr, innerPayload)
		return sn.Decision{}, nil
	}
	next, err := fw.fabric.NextHop(local, finalDst)
	if err != nil {
		return sn.Decision{}, err
	}
	return sn.Decision{
		Forwards: []sn.Forward{{Dst: next}},
		// Transit flows are cacheable: later packets of this flow bypass
		// the module entirely.
		Rules: []sn.Rule{{
			Key:    pkt.Key(),
			Action: cache.Action{Forward: []wire.Addr{next}},
		}},
	}, nil
}

// SendTransit encapsulates and launches an inner packet from the SN at
// env toward the destination SN, using the gateway path (or a direct pipe
// when the optimization is on). The connection ID of the outer packet
// reuses the inner one so transit flows stay cacheable per-flow.
func SendTransit(env sn.Env, fabric *Fabric, finalDst, origSrc wire.Addr, inner *wire.ILPHeader, innerPayload []byte) error {
	svcData, payload, err := EncodeTransit(finalDst, origSrc, inner, innerPayload)
	if err != nil {
		return err
	}
	next, err := fabric.NextHop(env.LocalAddr(), finalDst)
	if err != nil {
		return err
	}
	outer := wire.ILPHeader{Service: wire.SvcPeering, Conn: inner.Conn, Data: svcData}
	return env.Send(next, &outer, payload)
}
