package peering

import (
	"fmt"
	"testing"
	"testing/quick"

	"interedge/internal/wire"
)

// Property: for any pair of registered addresses, NextHop either fails or
// returns an address registered in the fabric, and iterating NextHop from
// the source always reaches the destination in at most 3 hops (src SN →
// local gateway → remote gateway → dst SN).
func TestNextHopConvergesProperty(t *testing.T) {
	f := func(nEdomains, snsPer uint8, srcIdx, dstIdx uint16) bool {
		ne := int(nEdomains%4) + 2 // 2..5 edomains
		ns := int(snsPer%3) + 1    // 1..3 SNs each
		fab := NewFabric()
		var all []wire.Addr
		for e := 0; e < ne; e++ {
			id := EdomainID(fmt.Sprintf("ed-%d", e))
			var sns []wire.Addr
			for s := 0; s < ns; s++ {
				sns = append(sns, wire.MustAddr(fmt.Sprintf("fd00:%x::%x", e+1, s+1)))
			}
			if err := fab.AddEdomain(id, sns[0]); err != nil {
				return false
			}
			for _, a := range sns[1:] {
				if err := fab.RegisterAddr(id, a); err != nil {
					return false
				}
			}
			all = append(all, sns...)
		}
		if err := fab.EstablishMesh(func(a, b wire.Addr) error { return nil }); err != nil {
			return false
		}
		src := all[int(srcIdx)%len(all)]
		dst := all[int(dstIdx)%len(all)]
		cur := src
		for hop := 0; hop < 4; hop++ {
			next, err := fab.NextHop(cur, dst)
			if err != nil {
				return false
			}
			if _, known := fab.EdomainOf(next); !known {
				return false // next hop outside the fabric
			}
			if next == dst {
				return true
			}
			if next == cur {
				return false // no progress
			}
			cur = next
		}
		return false // did not converge within 3 hops
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
