package peering

import (
	"bytes"
	"testing"
	"time"

	"interedge/internal/handshake"
	"interedge/internal/netsim"
	"interedge/internal/pipe"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

func TestFabricEdomainRegistry(t *testing.T) {
	f := NewFabric()
	gwA := wire.MustAddr("fd00::a1")
	if err := f.AddEdomain("ed-a", gwA); err != nil {
		t.Fatal(err)
	}
	if err := f.AddEdomain("ed-a", gwA); err == nil {
		t.Fatal("duplicate edomain accepted")
	}
	if err := f.AddEdomain("ed-x"); err == nil {
		t.Fatal("edomain without gateway accepted")
	}
	if err := f.RegisterAddr("ed-a", wire.MustAddr("fd00::a2")); err != nil {
		t.Fatal(err)
	}
	if err := f.RegisterAddr("ed-zzz", wire.MustAddr("fd00::a3")); err == nil {
		t.Fatal("register in unknown edomain accepted")
	}
	if ed, ok := f.EdomainOf(gwA); !ok || ed != "ed-a" {
		t.Fatalf("EdomainOf gateway = %v %v", ed, ok)
	}
	if _, ok := f.EdomainOf(wire.MustAddr("fd00::ff")); ok {
		t.Fatal("unknown address resolved")
	}
}

func buildThreeEdomainFabric(t *testing.T) (*Fabric, map[string]wire.Addr) {
	t.Helper()
	f := NewFabric()
	addrs := map[string]wire.Addr{
		"gwA": wire.MustAddr("fd00::a1"), "snA": wire.MustAddr("fd00::a2"),
		"gwB": wire.MustAddr("fd00::b1"), "snB": wire.MustAddr("fd00::b2"),
		"gwC": wire.MustAddr("fd00::c1"),
	}
	if err := f.AddEdomain("ed-a", addrs["gwA"]); err != nil {
		t.Fatal(err)
	}
	if err := f.AddEdomain("ed-b", addrs["gwB"]); err != nil {
		t.Fatal(err)
	}
	if err := f.AddEdomain("ed-c", addrs["gwC"]); err != nil {
		t.Fatal(err)
	}
	if err := f.RegisterAddr("ed-a", addrs["snA"]); err != nil {
		t.Fatal(err)
	}
	if err := f.RegisterAddr("ed-b", addrs["snB"]); err != nil {
		t.Fatal(err)
	}
	var connects [][2]wire.Addr
	if err := f.EstablishMesh(func(a, b wire.Addr) error {
		connects = append(connects, [2]wire.Addr{a, b})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(connects) != 3 { // 3 edomains -> 3 pairs
		t.Fatalf("mesh made %d connections, want 3", len(connects))
	}
	if !f.MeshComplete() {
		t.Fatal("mesh not complete")
	}
	return f, addrs
}

func TestNextHopRouting(t *testing.T) {
	f, addrs := buildThreeEdomainFabric(t)

	// Same edomain: direct.
	next, err := f.NextHop(addrs["gwA"], addrs["snA"])
	if err != nil || next != addrs["snA"] {
		t.Fatalf("intra next = %v err %v", next, err)
	}
	// Non-gateway SN in A sending to SN in B: first to A's gateway.
	next, err = f.NextHop(addrs["snA"], addrs["snB"])
	if err != nil || next != addrs["gwA"] {
		t.Fatalf("toward gateway next = %v err %v", next, err)
	}
	// A's gateway: cross the pipe to B's gateway.
	next, err = f.NextHop(addrs["gwA"], addrs["snB"])
	if err != nil || next != addrs["gwB"] {
		t.Fatalf("cross next = %v err %v", next, err)
	}
	// B's gateway: deliver to the destination SN.
	next, err = f.NextHop(addrs["gwB"], addrs["snB"])
	if err != nil || next != addrs["snB"] {
		t.Fatalf("deliver next = %v err %v", next, err)
	}
	// Unknown endpoints fail.
	if _, err := f.NextHop(wire.MustAddr("fd00::ff"), addrs["snB"]); err == nil {
		t.Fatal("unknown source accepted")
	}
	if _, err := f.NextHop(addrs["snA"], wire.MustAddr("fd00::ff")); err == nil {
		t.Fatal("unknown destination accepted")
	}
}

func TestNextHopDirectConnectOptimization(t *testing.T) {
	f, addrs := buildThreeEdomainFabric(t)
	f.SetDirectConnect(true)
	next, err := f.NextHop(addrs["snA"], addrs["snB"])
	if err != nil || next != addrs["snB"] {
		t.Fatalf("direct next = %v err %v", next, err)
	}
}

func TestTransitCodecRoundTrip(t *testing.T) {
	finalDst := wire.MustAddr("fd00::b2")
	origSrc := wire.MustAddr("fd00::1")
	inner := wire.ILPHeader{Service: wire.SvcEcho, Conn: 42, Data: []byte("svc")}
	svcData, payload, err := EncodeTransit(finalDst, origSrc, &inner, []byte("inner payload"))
	if err != nil {
		t.Fatal(err)
	}
	gotDst, gotSrc, err := DecodeTransitMeta(svcData)
	if err != nil || gotDst != finalDst || gotSrc != origSrc {
		t.Fatalf("meta %v %v err %v", gotDst, gotSrc, err)
	}
	gotHdr, gotPayload, err := DecodeTransitPayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr.Service != inner.Service || gotHdr.Conn != inner.Conn || !bytes.Equal(gotHdr.Data, inner.Data) {
		t.Fatalf("inner hdr %+v", gotHdr)
	}
	if string(gotPayload) != "inner payload" {
		t.Fatalf("payload %q", gotPayload)
	}
}

func TestTransitCodecMalformed(t *testing.T) {
	if _, _, err := DecodeTransitMeta([]byte("short")); err != ErrBadTransit {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := DecodeTransitPayload([]byte{0}); err != ErrBadTransit {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := DecodeTransitPayload([]byte{0, 200}); err != ErrBadTransit {
		t.Fatalf("err = %v", err)
	}
}

func TestSettlementFreeLedger(t *testing.T) {
	f, _ := buildThreeEdomainFabric(t)
	f.RecordTransfer("ed-a", "ed-b", 1000)
	f.RecordTransfer("ed-a", "ed-b", 500)
	f.RecordTransfer("ed-b", "ed-a", 100)
	recs := f.Ledger()
	if len(recs) != 2 {
		t.Fatalf("ledger %v", recs)
	}
	for _, r := range recs {
		if r.FeesOwed != 0 {
			t.Fatalf("settlement-free violated: %+v", r)
		}
	}
	if recs[0].From != "ed-a" || recs[0].Bytes != 1500 || recs[0].Packets != 2 {
		t.Fatalf("record %+v", recs[0])
	}
}

// End-to-end: a packet crosses three SNs in two edomains via the
// SvcPeering forwarder and is decapsulated at the destination SN, where
// the echo module sees the ORIGINAL source and replies via transit.
func TestInterEdomainTransitEndToEnd(t *testing.T) {
	net := netsim.NewNetwork()
	fabric := NewFabric()

	mkSN := func(addr string) *sn.SN {
		tr, err := net.Attach(wire.MustAddr(addr))
		if err != nil {
			t.Fatal(err)
		}
		id, err := handshake.NewIdentity()
		if err != nil {
			t.Fatal(err)
		}
		node, err := sn.New(sn.Config{Transport: tr, Identity: id})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		if err := node.Register(NewForwarder(fabric, node.Inject)); err != nil {
			t.Fatal(err)
		}
		return node
	}

	gwA := mkSN("fd00::a1")
	gwB := mkSN("fd00::b1")
	snB := mkSN("fd00::b2")

	// snB hosts a transit-aware echo module.
	echoed := make(chan *sn.Packet, 1)
	if err := snB.Register(&transitEcho{fabric: fabric, got: echoed}); err != nil {
		t.Fatal(err)
	}

	if err := fabric.AddEdomain("ed-a", gwA.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := fabric.AddEdomain("ed-b", gwB.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := fabric.RegisterAddr("ed-b", snB.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := fabric.EstablishMesh(func(a, b wire.Addr) error {
		if a == gwA.Addr() {
			return gwA.Connect(b)
		}
		return gwB.Connect(b)
	}); err != nil {
		t.Fatal(err)
	}
	// Intra-edomain pipes.
	if err := gwB.Connect(snB.Addr()); err != nil {
		t.Fatal(err)
	}

	// A host in ed-a, associated with gwA.
	htr, err := net.Attach(wire.MustAddr("fd00::1"))
	if err != nil {
		t.Fatal(err)
	}
	hid, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	if err := fabric.RegisterAddr("ed-a", wire.MustAddr("fd00::1")); err != nil {
		t.Fatal(err)
	}
	hostMgr, err := pipe.New(pipe.Config{Transport: htr, Identity: hid})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hostMgr.Close() })
	if err := hostMgr.Connect(gwA.Addr()); err != nil {
		t.Fatal(err)
	}

	// The host sends a transit-encapsulated echo request: finalDst snB.
	inner := wire.ILPHeader{Service: wire.SvcEcho, Conn: 9}
	svcData, payload, err := EncodeTransit(snB.Addr(), wire.MustAddr("fd00::1"), &inner, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	outer := wire.ILPHeader{Service: wire.SvcPeering, Conn: 9, Data: svcData}
	if err := hostMgr.Send(gwA.Addr(), &outer, payload); err != nil {
		t.Fatal(err)
	}

	select {
	case pkt := <-echoed:
		if pkt.Src != wire.MustAddr("fd00::1") {
			t.Fatalf("echo saw source %s, want original host", pkt.Src)
		}
		if string(pkt.Payload) != "ping" {
			t.Fatalf("payload %q", pkt.Payload)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("transit packet never reached destination SN")
	}

	// The settlement-free ledger saw the crossing.
	recs := fabric.Ledger()
	if len(recs) == 0 {
		t.Fatal("no ledger records for transit")
	}
	for _, r := range recs {
		if r.FeesOwed != 0 {
			t.Fatalf("fees on settlement-free peering: %+v", r)
		}
	}
}

// transitEcho records the decapsulated packet it receives.
type transitEcho struct {
	fabric *Fabric
	got    chan *sn.Packet
}

func (e *transitEcho) Service() wire.ServiceID { return wire.SvcEcho }
func (e *transitEcho) Name() string            { return "transit-echo" }
func (e *transitEcho) Version() string         { return "1" }
func (e *transitEcho) HandlePacket(env sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	cp := *pkt
	cp.Payload = append([]byte(nil), pkt.Payload...)
	e.got <- &cp
	return sn.Decision{}, nil
}
