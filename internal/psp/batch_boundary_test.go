package psp

import (
	"bytes"
	"fmt"
	"testing"
)

// rxDispatchBatchSize mirrors internal/pipe's rxDispatchBatch: the largest
// batch an RX worker hands to OpenBatch in one call. The boundary tests pin
// behaviour at exactly that size so a pipe-side change to the dispatch
// batch cannot silently cross an untested crypto-batch regime.
const rxDispatchBatchSize = 32

// TestOpenBatchSizeBoundaries drives seal+open round trips at the batch
// sizes where run-length bookkeeping changes shape: empty, a single
// packet (no run reuse), and exactly one full RX dispatch batch.
func TestOpenBatchSizeBoundaries(t *testing.T) {
	cases := []struct {
		name string
		n    int
	}{
		{"empty", 0},
		{"single", 1},
		{"rx-dispatch-batch", rxDispatchBatchSize},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			init, resp := pipePair(t)
			pkts, hdrs, payloads := sealBatchPackets(t, init.TX, tc.n)
			var s Scratch
			out := make([]OpenResult, tc.n)
			resp.RX.OpenBatch(&s, pkts, out)
			for i, r := range out {
				if r.Err != nil {
					t.Fatalf("packet %d/%d: %v", i, tc.n, r.Err)
				}
				if !bytes.Equal(r.Hdr, hdrs[i]) || !bytes.Equal(r.Payload, payloads[i]) {
					t.Fatalf("packet %d/%d: roundtrip mismatch", i, tc.n)
				}
			}
			// The batch must consume exactly n IVs: the next sequential
			// seal opens fine, proving no IV was skipped or reused.
			pkt, err := init.TX.Seal(nil, []byte("after"), []byte("batch"))
			if err != nil {
				t.Fatal(err)
			}
			if _, _, err := resp.RX.Open(pkt); err != nil {
				t.Fatalf("sequential seal after %d-batch: %v", tc.n, err)
			}
		})
	}
}

// TestOpenBatchAllCorrupt feeds a batch where every packet fails
// authentication: every result must carry ErrAuthFailed, no replay state
// may be marked (the original packets still open afterwards), and the
// scratch arena must stay consistent for the following good batch.
func TestOpenBatchAllCorrupt(t *testing.T) {
	init, resp := pipePair(t)
	const n = 8
	pkts, hdrs, _ := sealBatchPackets(t, init.TX, n)
	corrupt := make([][]byte, n)
	for i := range pkts {
		corrupt[i] = append([]byte(nil), pkts[i]...)
		corrupt[i][len(corrupt[i])-1] ^= 0xFF
	}
	var s Scratch
	out := make([]OpenResult, n)
	resp.RX.OpenBatch(&s, corrupt, out)
	for i, r := range out {
		if r.Err != ErrAuthFailed {
			t.Fatalf("corrupt packet %d: err=%v, want ErrAuthFailed", i, r.Err)
		}
		if r.Hdr != nil || r.Payload != nil {
			t.Fatalf("corrupt packet %d: non-nil Hdr/Payload on failure", i)
		}
	}
	// Auth failures must not have consumed replay-window slots: the
	// untampered originals still open as a batch.
	resp.RX.OpenBatch(&s, pkts, out)
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("original packet %d after all-corrupt batch: %v", i, r.Err)
		}
		if !bytes.Equal(r.Hdr, hdrs[i]) {
			t.Fatalf("original packet %d: header mismatch", i)
		}
	}
}

// TestOpenBatchEpochChangeMidRun pins the SPI-run bookkeeping: a batch
// whose SPI changes mid-run (sender rotated between halves) must re-fetch
// cipher state at the boundary, and each half must consume its own epoch's
// replay window. A duplicate straddling the boundary is still rejected.
func TestOpenBatchEpochChangeMidRun(t *testing.T) {
	init, resp := pipePair(t)
	const half = 4
	old, oldHdrs, _ := sealBatchPackets(t, init.TX, half)
	if err := init.TX.Rotate(); err != nil {
		t.Fatal(err)
	}
	fresh, freshHdrs, _ := sealBatchPackets(t, init.TX, half)

	// One batch, one SPI change exactly mid-run, plus a cross-epoch
	// duplicate of an old packet at the tail.
	batch := make([][]byte, 0, 2*half+1)
	batch = append(batch, old...)
	batch = append(batch, fresh...)
	batch = append(batch, old[0])

	var s Scratch
	out := make([]OpenResult, len(batch))
	resp.RX.OpenBatch(&s, batch, out)
	for i := 0; i < half; i++ {
		if out[i].Err != nil {
			t.Fatalf("old-epoch packet %d: %v", i, out[i].Err)
		}
		if !bytes.Equal(out[i].Hdr, oldHdrs[i]) {
			t.Fatalf("old-epoch packet %d: header mismatch", i)
		}
	}
	for i := 0; i < half; i++ {
		if out[half+i].Err != nil {
			t.Fatalf("fresh-epoch packet %d: %v", i, out[half+i].Err)
		}
		if !bytes.Equal(out[half+i].Hdr, freshHdrs[i]) {
			t.Fatalf("fresh-epoch packet %d: header mismatch", i)
		}
	}
	if out[2*half].Err != ErrReplay {
		t.Fatalf("cross-epoch duplicate: err=%v, want ErrReplay", out[2*half].Err)
	}
}

// TestSealStagedBoundaries drives the stage-then-seal path at the same
// boundary sizes, plus its argument-validation edge.
func TestSealStagedBoundaries(t *testing.T) {
	cases := []struct {
		name string
		n    int
	}{
		{"empty", 0},
		{"single", 1},
		{"rx-dispatch-batch", rxDispatchBatchSize},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			init, resp := pipePair(t)
			pkts := make([][]byte, tc.n)
			hdrLens := make([]int, tc.n)
			hdrs := make([][]byte, tc.n)
			payloads := make([][]byte, tc.n)
			for i := range pkts {
				hdrs[i] = []byte(fmt.Sprintf("staged-hdr-%02d", i))
				payloads[i] = []byte(fmt.Sprintf("staged-payload-%02d", i))
				pkts[i] = make([]byte, SealedSize(len(hdrs[i]), len(payloads[i])))
				StageSeal(pkts[i], hdrs[i], payloads[i])
				hdrLens[i] = len(hdrs[i])
			}
			var s Scratch
			if err := init.TX.SealStaged(&s, pkts, hdrLens); err != nil {
				t.Fatal(err)
			}
			out := make([]OpenResult, tc.n)
			resp.RX.OpenBatch(&s, pkts, out)
			for i, r := range out {
				if r.Err != nil {
					t.Fatalf("staged packet %d/%d: %v", i, tc.n, r.Err)
				}
				if !bytes.Equal(r.Hdr, hdrs[i]) || !bytes.Equal(r.Payload, payloads[i]) {
					t.Fatalf("staged packet %d/%d: roundtrip mismatch", i, tc.n)
				}
			}
		})
	}

	t.Run("length-mismatch", func(t *testing.T) {
		init, _ := pipePair(t)
		var s Scratch
		pkt := make([]byte, SealedSize(4, 4))
		if err := init.TX.SealStaged(&s, [][]byte{pkt}, []int{4, 4}); err == nil {
			t.Fatal("SealStaged accepted mismatched pkts/hdrLens lengths")
		}
		// The mismatch must be rejected before any IV is reserved: the
		// next sequential seal still uses IV 0 semantics (round-trips).
		if err := init.TX.SealStaged(&s, [][]byte{}, []int{}); err != nil {
			t.Fatalf("empty SealStaged after rejected call: %v", err)
		}
	})
}
