package psp

import (
	"testing"

	"interedge/internal/cryptutil"
)

// The pipe-terminus workers run Seal and Open once per packet, so the
// scratch variants must not allocate in steady state: aad, nonce, and the
// decrypted-header buffer all live in the reused Scratch, and a dst with
// enough capacity is reused in place.

func TestSealScratchZeroAlloc(t *testing.T) {
	master := cryptutil.NewRandomKey()
	tx, err := NewTX(master, DirInitiatorToResponder, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, 32)
	payload := make([]byte, 1024)
	dst := make([]byte, 0, SealedSize(len(hdr), len(payload)))
	var s Scratch
	if _, err := tx.SealScratch(&s, dst[:0], hdr, payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := tx.SealScratch(&s, dst[:0], hdr, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SealScratch allocated %.1f times per op, want 0", allocs)
	}
}

func TestSealBatchZeroAlloc(t *testing.T) {
	master := cryptutil.NewRandomKey()
	tx, err := NewTX(master, DirInitiatorToResponder, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	hdrs := make([][]byte, n)
	payloads := make([][]byte, n)
	dsts := make([][]byte, n)
	for i := range hdrs {
		hdrs[i] = make([]byte, 32)
		payloads[i] = make([]byte, 1024)
		dsts[i] = make([]byte, 0, SealedSize(32, 1024))
	}
	var s Scratch
	run := func() {
		for i := range dsts {
			dsts[i] = dsts[i][:0]
		}
		if err := tx.SealBatch(&s, dsts, hdrs, payloads); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("SealBatch allocated %.1f times per batch, want 0", allocs)
	}
}

func TestOpenBatchZeroAlloc(t *testing.T) {
	master := cryptutil.NewRandomKey()
	tx, err := NewTX(master, DirInitiatorToResponder, 0)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewRX(master, DirInitiatorToResponder, 0)
	if err != nil {
		t.Fatal(err)
	}
	rx.SetReplayCheck(false)
	const n = 32
	pkts := make([][]byte, n)
	for i := range pkts {
		pkts[i], err = tx.Seal(nil, make([]byte, 32), make([]byte, 1024))
		if err != nil {
			t.Fatal(err)
		}
	}
	out := make([]OpenResult, n)
	var s Scratch
	run := func() {
		rx.OpenBatch(&s, pkts, out)
		for i := range out {
			if out[i].Err != nil {
				t.Fatal(out[i].Err)
			}
		}
	}
	run()
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("OpenBatch allocated %.1f times per batch, want 0", allocs)
	}
}

func TestSealStagedZeroAlloc(t *testing.T) {
	master := cryptutil.NewRandomKey()
	tx, err := NewTX(master, DirInitiatorToResponder, 0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	hdr := make([]byte, 32)
	payload := make([]byte, 1024)
	pkts := make([][]byte, n)
	hdrLens := make([]int, n)
	for i := range pkts {
		pkts[i] = make([]byte, SealedSize(len(hdr), len(payload)))
		hdrLens[i] = len(hdr)
	}
	var s Scratch
	run := func() {
		for i := range pkts {
			StageSeal(pkts[i], hdr, payload)
		}
		if err := tx.SealStaged(&s, pkts, hdrLens); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("SealStaged allocated %.1f times per batch, want 0", allocs)
	}
}

func TestOpenScratchZeroAlloc(t *testing.T) {
	master := cryptutil.NewRandomKey()
	tx, err := NewTX(master, DirInitiatorToResponder, 0)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewRX(master, DirInitiatorToResponder, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Replay protection would reject reopening the same packet; the alloc
	// measurement needs a fixed input.
	rx.SetReplayCheck(false)
	pkt, err := tx.Seal(nil, make([]byte, 32), make([]byte, 1024))
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	if _, _, err := rx.OpenScratch(&s, pkt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := rx.OpenScratch(&s, pkt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("OpenScratch allocated %.1f times per op, want 0", allocs)
	}
}
