package psp

import (
	"testing"

	"interedge/internal/cryptutil"
)

// The pipe-terminus workers run Seal and Open once per packet, so the
// scratch variants must not allocate in steady state: aad, nonce, and the
// decrypted-header buffer all live in the reused Scratch, and a dst with
// enough capacity is reused in place.

func TestSealScratchZeroAlloc(t *testing.T) {
	master := cryptutil.NewRandomKey()
	tx, err := NewTX(master, DirInitiatorToResponder, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, 32)
	payload := make([]byte, 1024)
	dst := make([]byte, 0, SealedSize(len(hdr), len(payload)))
	var s Scratch
	if _, err := tx.SealScratch(&s, dst[:0], hdr, payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := tx.SealScratch(&s, dst[:0], hdr, payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SealScratch allocated %.1f times per op, want 0", allocs)
	}
}

func TestOpenScratchZeroAlloc(t *testing.T) {
	master := cryptutil.NewRandomKey()
	tx, err := NewTX(master, DirInitiatorToResponder, 0)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewRX(master, DirInitiatorToResponder, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Replay protection would reject reopening the same packet; the alloc
	// measurement needs a fixed input.
	rx.SetReplayCheck(false)
	pkt, err := tx.Seal(nil, make([]byte, 32), make([]byte, 1024))
	if err != nil {
		t.Fatal(err)
	}
	var s Scratch
	if _, _, err := rx.OpenScratch(&s, pkt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := rx.OpenScratch(&s, pkt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("OpenScratch allocated %.1f times per op, want 0", allocs)
	}
}
