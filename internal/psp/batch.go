// Batch-granular seal/open: the per-packet Seal/Open fast path pays a
// mutex round-trip and a cipher-state fetch per packet. RX workers receive
// vectored batches (recvmmsg), so the crypto layer can amortize that
// bookkeeping across the batch: one lock acquisition reserves a contiguous
// IV run for a whole sealed batch, and one lock pass resolves epochs and
// replay state for a whole received batch, reusing the cipher state across
// each run of packets carrying the same SPI.
package psp

import (
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"interedge/internal/wire"
)

// OpenResult is the per-packet outcome of an OpenBatch call. On success
// Err is nil, Hdr holds the decrypted ILP header bytes (aliasing the
// Scratch arena, valid until its next batch use) and Payload aliases the
// input packet. On failure only Err is set; other packets in the batch are
// unaffected.
type OpenResult struct {
	Hdr     []byte
	Payload []byte
	Err     error
}

// openMeta carries one packet's parsed state between OpenBatch passes.
type openMeta struct {
	aead   cipher.AEAD
	epoch  uint32
	spi    uint32
	iv     uint64
	aadEnd int
	ctLen  int
	hdrOff int
	hdrLen int
	ok     bool
}

// reserveIVs allocates a contiguous run of n IVs under one lock and
// returns the SPI and cipher state they are bound to. Rotation between
// reservation and use is safe: the returned AEAD matches the returned
// SPI's epoch, so late seals simply go out under the older (still
// accepted) epoch.
func (t *TX) reserveIVs(n int) (spi uint32, iv uint64, aead cipher.AEAD) {
	t.mu.Lock()
	spi = t.baseSPI | (t.epoch & epochMask)
	iv = t.iv
	t.iv += uint64(n)
	aead = t.aead
	t.mu.Unlock()
	return spi, iv, aead
}

// StageSeal lays hdrPlain and payload out in pkt at their final wire
// offsets so a later SealStaged can encrypt in place without moving any
// bytes. pkt must be exactly SealedSize(len(hdrPlain), len(payload)) long;
// the PSP header, length field, and tag regions are left for SealStaged.
func StageSeal(pkt, hdrPlain, payload []byte) {
	aadEnd := wire.PSPHeaderSize + 2
	copy(pkt[aadEnd:], hdrPlain)
	copy(pkt[aadEnd+len(hdrPlain)+16:], payload)
}

// sealStagedOne seals one staged packet in place: writes the PSP header
// and ciphertext length, assembles the AAD in the scratch, and encrypts
// the header plaintext where it sits (cipher.AEAD.Seal with dst =
// plaintext[:0] is the sanctioned in-place form).
func (s *Scratch) sealStagedOne(aead cipher.AEAD, spi uint32, iv uint64, pkt []byte, hdrLen int) error {
	ph := wire.PSPHeader{SPI: spi, IV: iv}
	if _, err := ph.SerializeTo(pkt); err != nil {
		return err
	}
	ctLen := hdrLen + 16
	binary.BigEndian.PutUint16(pkt[wire.PSPHeaderSize:], uint16(ctLen))
	aadEnd := wire.PSPHeaderSize + 2
	if len(pkt) < aadEnd+ctLen {
		return wire.ErrTruncated
	}
	payload := pkt[aadEnd+ctLen:]
	aad := append(s.aad[:0], pkt[:aadEnd]...)
	aad = append(aad, payload...)
	s.aad = aad
	fillNonce(&s.nonce, spi, iv)
	hdrPlain := pkt[aadEnd : aadEnd+hdrLen]
	ct := aead.Seal(hdrPlain[:0], s.nonce[:], hdrPlain, aad)
	if len(ct) != ctLen {
		return fmt.Errorf("psp: internal: ciphertext length %d != %d", len(ct), ctLen)
	}
	return nil
}

// SealBatch seals len(hdrs) packets with a single cipher-state fetch and
// one contiguous IV reservation. dsts[i] is appended to exactly as
// SealScratch appends to dst, and the extended slices are written back
// into dsts. With a warm Scratch and dsts of sufficient capacity it
// performs no allocations.
func (t *TX) SealBatch(s *Scratch, dsts [][]byte, hdrs, payloads [][]byte) error {
	n := len(hdrs)
	if len(dsts) != n || len(payloads) != n {
		return fmt.Errorf("psp: SealBatch length mismatch: dsts=%d hdrs=%d payloads=%d",
			len(dsts), n, len(payloads))
	}
	if n == 0 {
		return nil
	}
	spi, iv, aead := t.reserveIVs(n)
	for i := 0; i < n; i++ {
		start := len(dsts[i])
		d := grow(dsts[i], SealedSize(len(hdrs[i]), len(payloads[i])))
		out := d[start:]
		StageSeal(out, hdrs[i], payloads[i])
		if err := s.sealStagedOne(aead, spi, iv+uint64(i), out, len(hdrs[i])); err != nil {
			return err
		}
		dsts[i] = d
	}
	return nil
}

// SealStaged seals packets previously laid out by StageSeal in place,
// consuming one contiguous IV run. pkts[i] must be exactly
// SealedSize(hdrLens[i], payloadLen) bytes with the header plaintext and
// payload already at their wire offsets. This is the egress coalescer's
// seal-at-flush path: packets are staged as they are enqueued and the
// whole pending batch is sealed with one cipher-state fetch when the
// batch flushes.
func (t *TX) SealStaged(s *Scratch, pkts [][]byte, hdrLens []int) error {
	n := len(pkts)
	if len(hdrLens) != n {
		return fmt.Errorf("psp: SealStaged length mismatch: pkts=%d hdrLens=%d", n, len(hdrLens))
	}
	if n == 0 {
		return nil
	}
	spi, iv, aead := t.reserveIVs(n)
	for i := 0; i < n; i++ {
		if err := s.sealStagedOne(aead, spi, iv+uint64(i), pkts[i], hdrLens[i]); err != nil {
			return err
		}
	}
	return nil
}

// OpenBatch parses and authenticates a batch of sealed packets, writing
// one OpenResult per packet into out (which must be at least len(pkts)
// long). Failures are isolated per packet: a corrupt, replayed, or
// truncated packet mid-batch sets only its own Err and never affects the
// rest of the run.
//
// The lock-bound work is amortized: one locked pass resolves epochs,
// fetches cipher state (reused across each run of packets with the same
// SPI), and pre-checks replay windows for the whole batch; the AEAD opens
// then run lock-free into a single pre-sized arena; a final locked pass
// commits epochs and marks replay windows, so a duplicated IV within one
// batch is rejected exactly as it would be sequentially. With a warm
// Scratch it performs no steady-state allocations.
//
// Returned Hdr slices alias the Scratch arena and are valid until its
// next batch use; Payload slices alias the input packets.
func (r *RX) OpenBatch(s *Scratch, pkts [][]byte, out []OpenResult) {
	n := len(pkts)
	out = out[:n]
	metas := s.metas[:0]

	// Pass 1 (lock-free): parse PSP headers and bounds; size the header
	// arena for the whole batch so per-packet opens never reallocate (a
	// realloc would invalidate Hdr slices already handed out).
	total := 0
	for i := 0; i < n; i++ {
		out[i] = OpenResult{}
		var m openMeta
		var ph wire.PSPHeader
		hn, err := ph.DecodeFromBytes(pkts[i])
		if err == nil && ph.SPI&^uint32(epochMask) != r.baseSPI {
			err = fmt.Errorf("psp: SPI %#x does not match pipe base %#x", ph.SPI, r.baseSPI)
		}
		if err == nil && len(pkts[i]) < hn+2 {
			err = wire.ErrTruncated
		}
		if err == nil {
			m.ctLen = int(binary.BigEndian.Uint16(pkts[i][hn : hn+2]))
			m.aadEnd = hn + 2
			if len(pkts[i]) < m.aadEnd+m.ctLen || m.ctLen < 16 {
				err = wire.ErrTruncated
			}
		}
		if err != nil {
			out[i].Err = err
		} else {
			m.spi, m.iv, m.ok = ph.SPI, ph.IV, true
			total += m.ctLen - 16
		}
		metas = append(metas, m)
	}
	s.metas = metas

	// Pass 2 (one lock): resolve epochs and fetch cipher state, reusing
	// the previous packet's state across an equal-SPI run, and pre-check
	// replay windows.
	r.mu.Lock()
	replay := r.replayCheck
	var (
		lastSPI   uint32
		lastEpoch uint32
		lastAead  cipher.AEAD
		lastWin   *replayWindow
		haveLast  bool
	)
	for i := range metas {
		m := &metas[i]
		if !m.ok {
			continue
		}
		if !haveLast || m.spi != lastSPI {
			epoch := reconstructEpoch(r.epoch, m.spi&epochMask)
			aead, win, aerr := r.aeadForEpoch(epoch)
			if aerr != nil {
				out[i].Err = aerr
				m.ok = false
				haveLast = false
				continue
			}
			lastSPI, lastEpoch, lastAead, lastWin, haveLast = m.spi, epoch, aead, win, true
		}
		m.epoch, m.aead = lastEpoch, lastAead
		if replay && lastWin != nil {
			if rerr := lastWin.check(m.iv); rerr != nil {
				out[i].Err = rerr
				m.ok = false
			}
		}
	}
	r.mu.Unlock()

	// Pass 3 (lock-free): AEAD-open every surviving packet into the arena.
	arena := s.arena[:0]
	if cap(arena) < total {
		arena = make([]byte, 0, total)
	}
	for i := range metas {
		m := &metas[i]
		if !m.ok {
			continue
		}
		pkt := pkts[i]
		ct := pkt[m.aadEnd : m.aadEnd+m.ctLen]
		payload := pkt[m.aadEnd+m.ctLen:]
		aad := append(s.aad[:0], pkt[:m.aadEnd]...)
		aad = append(aad, payload...)
		s.aad = aad
		fillNonce(&s.nonce, m.spi, m.iv)
		off := len(arena)
		plain, err := m.aead.Open(arena[off:off], s.nonce[:], ct, aad)
		if err != nil {
			out[i].Err = ErrAuthFailed
			m.ok = false
			continue
		}
		m.hdrOff, m.hdrLen = off, len(plain)
		arena = arena[:off+len(plain)]
	}
	s.arena = arena

	// Pass 4 (one lock): commit epochs and mark replay windows. The
	// re-check under lock catches both concurrent opens of the same IV
	// and duplicates within this batch.
	r.mu.Lock()
	for i := range metas {
		m := &metas[i]
		if !m.ok {
			continue
		}
		win := r.commitEpoch(m.epoch, m.aead)
		if replay {
			if rerr := win.check(m.iv); rerr != nil {
				out[i].Err = rerr
				m.ok = false
				continue
			}
			win.mark(m.iv)
		}
	}
	r.mu.Unlock()

	for i := range metas {
		m := &metas[i]
		if m.ok {
			out[i].Hdr = arena[m.hdrOff : m.hdrOff+m.hdrLen]
			out[i].Payload = pkts[i][m.aadEnd+m.ctLen:]
		}
	}
}
