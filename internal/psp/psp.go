// Package psp implements PSP-style per-packet encryption for ILP pipes
// (§4 of the paper). Design goals, mirroring Google's PSP:
//
//   - Stateless per packet: every packet carries an SPI identifying the key
//     and a unique IV, so packets are independently decryptable even when
//     they arrive out of order or after loss.
//   - Header-only encryption: only the ILP header is encrypted with the
//     pipe's shared key; application payload is authenticated (covered by
//     the AEAD tag) but not re-encrypted, since endpoints already protect it
//     with their own keys.
//   - Cheap rotation: keys are derived per epoch from a pipe master secret;
//     the low byte of the SPI carries the epoch so a receiver can accept the
//     current and previous epoch during rotation without coordination.
//
// Wire layout produced by TX.Seal and consumed by RX.Open:
//
//	PSP header (12) | hdrCTLen (2) | ILP header ciphertext+tag | payload
package psp

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"interedge/internal/cryptutil"
	"interedge/internal/wire"
)

// Overhead is the number of bytes Seal adds on top of header plaintext and
// payload: the PSP header, the header-ciphertext length field, and the GCM
// tag.
const Overhead = wire.PSPHeaderSize + 2 + 16

// Epoch numbers wrap at 256; the SPI's low byte carries epoch mod 256.
const epochMask = 0xFF

// Direction labels bind each direction of a pipe to an independent key
// schedule derived from the same master secret.
type Direction string

// The two directions of a pipe, from the perspective of the handshake
// initiator.
const (
	DirInitiatorToResponder Direction = "i2r"
	DirResponderToInitiator Direction = "r2i"
)

// Errors returned by Open.
var (
	ErrBadEpoch   = errors.New("psp: packet epoch not current or previous")
	ErrReplay     = errors.New("psp: replayed or too-old IV")
	ErrAuthFailed = errors.New("psp: authentication failed")
)

func epochKey(master cryptutil.Key, dir Direction, epoch uint32) (cipher.AEAD, error) {
	info := fmt.Sprintf("interedge-psp/%s/epoch-%d", dir, epoch)
	k, err := cryptutil.DeriveKey(master[:], nil, info)
	if err != nil {
		return nil, err
	}
	block, err := aes.NewCipher(k[:])
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

func fillNonce(n *[12]byte, spi uint32, iv uint64) {
	binary.BigEndian.PutUint32(n[0:4], spi)
	binary.BigEndian.PutUint64(n[4:12], iv)
}

// Scratch holds the reusable working buffers (AAD assembly, decrypted
// header, nonce) for the zero-allocation Seal/Open fast path. Each
// pipeline worker owns one Scratch and threads it through every packet it
// processes; a Scratch is NOT safe for concurrent use. Header bytes
// returned by OpenScratch alias the Scratch and are overwritten by the
// next OpenScratch call.
type Scratch struct {
	aad   []byte
	hdr   []byte
	nonce [12]byte

	// Batch state (OpenBatch): decrypted headers for a whole batch land in
	// one arena so per-packet opens never reallocate, and per-packet
	// bookkeeping lives in metas. Both persist across calls for reuse.
	arena []byte
	metas []openMeta
}

// grow returns dst extended by need bytes, reusing capacity when
// available. The extension is returned uninitialized; callers must
// overwrite every byte.
func grow(dst []byte, need int) []byte {
	if n := len(dst) + need; n <= cap(dst) {
		return dst[:n]
	}
	return append(dst, make([]byte, need)...)
}

// TX is the sending half of one direction of a pipe. It is safe for
// concurrent use.
type TX struct {
	mu      sync.Mutex
	master  cryptutil.Key
	dir     Direction
	baseSPI uint32
	epoch   uint32
	iv      uint64
	aead    cipher.AEAD
}

// NewTX creates the sending state for one pipe direction. baseSPI's low
// byte is reserved for the epoch and must be zero.
func NewTX(master cryptutil.Key, dir Direction, baseSPI uint32) (*TX, error) {
	if baseSPI&epochMask != 0 {
		return nil, fmt.Errorf("psp: baseSPI low byte must be zero, got %#x", baseSPI)
	}
	aead, err := epochKey(master, dir, 0)
	if err != nil {
		return nil, err
	}
	return &TX{master: master, dir: dir, baseSPI: baseSPI, aead: aead}, nil
}

// NewTXAt creates sending state resuming at a given epoch with a fresh IV
// space. Used when pipe state migrates between SNs: the importer resumes
// one epoch above the exporter's, so the IV sequence the exporter consumed
// is never reused under the same key.
func NewTXAt(master cryptutil.Key, dir Direction, baseSPI, epoch uint32) (*TX, error) {
	if baseSPI&epochMask != 0 {
		return nil, fmt.Errorf("psp: baseSPI low byte must be zero, got %#x", baseSPI)
	}
	aead, err := epochKey(master, dir, epoch)
	if err != nil {
		return nil, err
	}
	return &TX{master: master, dir: dir, baseSPI: baseSPI, epoch: epoch, aead: aead}, nil
}

// Rotate advances to the next key epoch. Packets already sealed remain
// decryptable by receivers until they rotate twice.
func (t *TX) Rotate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	next := t.epoch + 1
	aead, err := epochKey(t.master, t.dir, next)
	if err != nil {
		return err
	}
	t.epoch = next
	t.aead = aead
	t.iv = 0
	return nil
}

// Epoch returns the current sending epoch.
func (t *TX) Epoch() uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// SealedSize returns the wire size of a packet with the given header and
// payload lengths.
func SealedSize(hdrLen, payloadLen int) int { return Overhead + hdrLen + payloadLen }

// Seal encrypts hdrPlain and authenticates payload, appending the full wire
// packet to dst and returning the extended slice. Each call consumes one IV.
func (t *TX) Seal(dst, hdrPlain, payload []byte) ([]byte, error) {
	var s Scratch
	return t.SealScratch(&s, dst, hdrPlain, payload)
}

// SealScratch is Seal with caller-provided working buffers: with a warm
// Scratch and a dst of sufficient capacity it performs no allocations.
// This is the pipe-terminus re-encrypt fast path.
func (t *TX) SealScratch(s *Scratch, dst, hdrPlain, payload []byte) ([]byte, error) {
	t.mu.Lock()
	spi := t.baseSPI | (t.epoch & epochMask)
	iv := t.iv
	t.iv++
	aead := t.aead
	t.mu.Unlock()

	ph := wire.PSPHeader{SPI: spi, IV: iv}
	start := len(dst)
	need := SealedSize(len(hdrPlain), len(payload))
	dst = grow(dst, need)
	out := dst[start:]
	if _, err := ph.SerializeTo(out); err != nil {
		return nil, err
	}
	ctLen := len(hdrPlain) + 16
	binary.BigEndian.PutUint16(out[wire.PSPHeaderSize:], uint16(ctLen))
	// AAD covers the cleartext prefix and the payload, binding them to the
	// encrypted header. The two regions are not contiguous on the wire
	// (the ciphertext sits between them), so they are assembled in the
	// scratch buffer.
	aadEnd := wire.PSPHeaderSize + 2
	payloadStart := aadEnd + ctLen
	copy(out[payloadStart:], payload)
	aad := append(s.aad[:0], out[:aadEnd]...)
	aad = append(aad, payload...)
	s.aad = aad
	fillNonce(&s.nonce, spi, iv)
	ct := aead.Seal(out[aadEnd:aadEnd], s.nonce[:], hdrPlain, aad)
	if len(ct) != ctLen {
		return nil, fmt.Errorf("psp: internal: ciphertext length %d != %d", len(ct), ctLen)
	}
	return dst, nil
}

// replayWindow tracks seen IVs per epoch with a sliding bitmap, rejecting
// duplicates and packets older than the window.
type replayWindow struct {
	maxIV  uint64
	seen   bool
	bitmap [replayWords]uint64
}

const (
	replayBits  = 1024
	replayWords = replayBits / 64
)

func (w *replayWindow) check(iv uint64) error {
	if !w.seen {
		return nil
	}
	if iv > w.maxIV {
		return nil
	}
	diff := w.maxIV - iv
	if diff >= replayBits {
		return ErrReplay
	}
	if w.bitmap[diff/64]&(1<<(diff%64)) != 0 {
		return ErrReplay
	}
	return nil
}

func (w *replayWindow) mark(iv uint64) {
	if !w.seen {
		w.seen = true
		w.maxIV = iv
		w.bitmap = [replayWords]uint64{}
		w.bitmap[0] = 1
		return
	}
	if iv > w.maxIV {
		shift := iv - w.maxIV
		if shift >= replayBits {
			w.bitmap = [replayWords]uint64{}
		} else {
			for ; shift > 0; shift-- {
				carryShift(&w.bitmap)
			}
		}
		w.maxIV = iv
		w.bitmap[0] |= 1
		return
	}
	diff := w.maxIV - iv
	if diff < replayBits {
		w.bitmap[diff/64] |= 1 << (diff % 64)
	}
}

func carryShift(b *[replayWords]uint64) {
	var carry uint64
	for i := 0; i < replayWords; i++ {
		next := b[i] >> 63
		b[i] = b[i]<<1 | carry
		carry = next
	}
}

// RX is the receiving half of one direction of a pipe. It accepts the
// current and the immediately previous key epoch, and (optionally) enforces
// anti-replay per epoch. Safe for concurrent use.
type RX struct {
	mu          sync.Mutex
	master      cryptutil.Key
	dir         Direction
	baseSPI     uint32
	epoch       uint32 // highest epoch observed
	aeads       map[uint32]cipher.AEAD
	windows     map[uint32]*replayWindow
	replayCheck bool
}

// NewRX creates the receiving state for one pipe direction.
func NewRX(master cryptutil.Key, dir Direction, baseSPI uint32) (*RX, error) {
	if baseSPI&epochMask != 0 {
		return nil, fmt.Errorf("psp: baseSPI low byte must be zero, got %#x", baseSPI)
	}
	aead, err := epochKey(master, dir, 0)
	if err != nil {
		return nil, err
	}
	return &RX{
		master:      master,
		dir:         dir,
		baseSPI:     baseSPI,
		aeads:       map[uint32]cipher.AEAD{0: aead},
		windows:     map[uint32]*replayWindow{0: {}},
		replayCheck: true,
	}, nil
}

// NewRXAt creates receiving state resuming at a given epoch. Earlier
// epochs are rejected exactly as if the receiver had rotated past them; the
// replay window for the resumed epoch starts empty, so an importer must
// resume at the epoch the peer currently sends on (duplicates of packets
// the exporter already consumed will be re-accepted once — callers that
// need exactly-once semantics handle duplication above the pipe, as the
// substrate can duplicate datagrams anyway).
func NewRXAt(master cryptutil.Key, dir Direction, baseSPI, epoch uint32) (*RX, error) {
	if baseSPI&epochMask != 0 {
		return nil, fmt.Errorf("psp: baseSPI low byte must be zero, got %#x", baseSPI)
	}
	aead, err := epochKey(master, dir, epoch)
	if err != nil {
		return nil, err
	}
	return &RX{
		master:      master,
		dir:         dir,
		baseSPI:     baseSPI,
		epoch:       epoch,
		aeads:       map[uint32]cipher.AEAD{epoch: aead},
		windows:     map[uint32]*replayWindow{epoch: {}},
		replayCheck: true,
	}, nil
}

// Epoch returns the highest receive epoch observed so far.
func (r *RX) Epoch() uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// SetReplayCheck enables or disables anti-replay enforcement. It is on by
// default; benchmarks that replay a single sealed packet disable it.
func (r *RX) SetReplayCheck(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.replayCheck = on
}

// reconstructEpoch rebuilds a full epoch number from its low byte relative
// to the highest epoch seen so far (cur).
func reconstructEpoch(cur, low uint32) uint32 {
	epoch := (cur &^ uint32(epochMask)) | low
	switch {
	case epoch > cur+1 && epoch >= 0x100:
		epoch -= 0x100
	case epoch+0x100 <= cur+1:
		epoch += 0x100
	}
	return epoch
}

// aeadForEpoch returns the AEAD and replay window for an already-tracked
// epoch, or derives a tentative AEAD (win == nil) for an acceptable but
// unseen one — any newer epoch (the sender may have rotated several times
// before sending) or the immediately previous epoch; anything older is
// rejected. It never mutates receiver state: the epoch cache, the windows,
// and the sliding current epoch are only touched by commitEpoch AFTER the
// packet authenticates. Committing on first sight would let a single
// corrupted or forged SPI byte advance the epoch and evict the live keys,
// permanently killing the pipe.
func (r *RX) aeadForEpoch(epoch uint32) (cipher.AEAD, *replayWindow, error) {
	if aead, ok := r.aeads[epoch]; ok {
		return aead, r.windows[epoch], nil
	}
	if epoch+1 < r.epoch {
		return nil, nil, ErrBadEpoch
	}
	aead, err := epochKey(r.master, r.dir, epoch)
	if err != nil {
		return nil, nil, err
	}
	return aead, nil, nil
}

// commitEpoch records an authenticated packet's epoch: caches its key,
// creates its replay window, advances the current epoch, and drops epochs
// older than the previous one. Idempotent (concurrent opens of the same
// new epoch both commit). Must be called with r.mu held.
func (r *RX) commitEpoch(epoch uint32, aead cipher.AEAD) *replayWindow {
	if w, ok := r.windows[epoch]; ok {
		return w
	}
	r.aeads[epoch] = aead
	w := &replayWindow{}
	r.windows[epoch] = w
	if epoch > r.epoch {
		r.epoch = epoch
		for e := range r.aeads {
			if e+1 < epoch {
				delete(r.aeads, e)
				delete(r.windows, e)
			}
		}
	}
	return w
}

// Open parses and authenticates a sealed packet, returning the decrypted
// ILP header bytes and the (aliased) payload bytes.
func (r *RX) Open(packet []byte) (hdrPlain, payload []byte, err error) {
	var s Scratch
	return r.OpenScratch(&s, packet)
}

// OpenScratch is Open with caller-provided working buffers: with a warm
// Scratch it performs no steady-state allocations. The returned header
// bytes alias the Scratch and are only valid until its next use; the
// payload aliases packet as with Open.
func (r *RX) OpenScratch(s *Scratch, packet []byte) (hdrPlain, payload []byte, err error) {
	var ph wire.PSPHeader
	n, err := ph.DecodeFromBytes(packet)
	if err != nil {
		return nil, nil, err
	}
	if ph.SPI&^uint32(epochMask) != r.baseSPI {
		return nil, nil, fmt.Errorf("psp: SPI %#x does not match pipe base %#x", ph.SPI, r.baseSPI)
	}
	if len(packet) < n+2 {
		return nil, nil, wire.ErrTruncated
	}
	ctLen := int(binary.BigEndian.Uint16(packet[n : n+2]))
	aadEnd := n + 2
	if len(packet) < aadEnd+ctLen {
		return nil, nil, wire.ErrTruncated
	}
	ct := packet[aadEnd : aadEnd+ctLen]
	payload = packet[aadEnd+ctLen:]

	// Epoch-aligned IV handling must be serialized; the AEAD open itself
	// runs outside the lock.
	epochLow := ph.SPI & epochMask
	r.mu.Lock()
	epoch := reconstructEpoch(r.epoch, epochLow)
	aead, win, aerr := r.aeadForEpoch(epoch)
	if aerr != nil {
		r.mu.Unlock()
		return nil, nil, aerr
	}
	// win is nil for a not-yet-committed epoch (no replays possible yet);
	// the authoritative check happens after authentication in any case.
	if r.replayCheck && win != nil {
		if rerr := win.check(ph.IV); rerr != nil {
			r.mu.Unlock()
			return nil, nil, rerr
		}
	}
	r.mu.Unlock()

	aad := append(s.aad[:0], packet[:aadEnd]...)
	aad = append(aad, payload...)
	s.aad = aad
	fillNonce(&s.nonce, ph.SPI, ph.IV)
	hdrPlain, err = aead.Open(s.hdr[:0], s.nonce[:], ct, aad)
	if err != nil {
		return nil, nil, ErrAuthFailed
	}
	s.hdr = hdrPlain

	r.mu.Lock()
	win = r.commitEpoch(epoch, aead)
	if r.replayCheck {
		// Re-validate under lock: a concurrent Open of the same IV may have
		// won the race between check and mark.
		if rerr := win.check(ph.IV); rerr != nil {
			r.mu.Unlock()
			return nil, nil, rerr
		}
		win.mark(ph.IV)
	}
	r.mu.Unlock()
	return hdrPlain, payload, nil
}

// PipeCrypto bundles both directions of a pipe for one endpoint.
type PipeCrypto struct {
	TX *TX
	RX *RX
}

// NewPipeCrypto derives the send and receive state for one endpoint of a
// pipe from the shared master secret. The initiator sends on the i2r
// schedule and receives on r2i; the responder is the mirror image. baseSPI
// must match on both ends.
func NewPipeCrypto(master cryptutil.Key, initiator bool, baseSPI uint32) (*PipeCrypto, error) {
	return NewPipeCryptoAt(master, initiator, baseSPI, 0, 0)
}

// NewPipeCryptoAt derives pipe crypto resuming at explicit epochs, for an
// endpoint importing established pipe state during a drain handoff. The
// peer keeps accepting because receivers admit any newer TX epoch without
// coordination.
func NewPipeCryptoAt(master cryptutil.Key, initiator bool, baseSPI, txEpoch, rxEpoch uint32) (*PipeCrypto, error) {
	txDir, rxDir := DirInitiatorToResponder, DirResponderToInitiator
	if !initiator {
		txDir, rxDir = rxDir, txDir
	}
	tx, err := NewTXAt(master, txDir, baseSPI, txEpoch)
	if err != nil {
		return nil, err
	}
	rx, err := NewRXAt(master, rxDir, baseSPI, rxEpoch)
	if err != nil {
		return nil, err
	}
	return &PipeCrypto{TX: tx, RX: rx}, nil
}
