package psp

import (
	"bytes"
	"fmt"
	"testing"
)

func sealBatchPackets(t *testing.T, tx *TX, n int) (pkts [][]byte, hdrs, payloads [][]byte) {
	t.Helper()
	var s Scratch
	hdrs = make([][]byte, n)
	payloads = make([][]byte, n)
	dsts := make([][]byte, n)
	for i := range hdrs {
		hdrs[i] = []byte(fmt.Sprintf("hdr-%02d-bytes", i))
		payloads[i] = []byte(fmt.Sprintf("payload-%02d with some body", i))
	}
	if err := tx.SealBatch(&s, dsts, hdrs, payloads); err != nil {
		t.Fatal(err)
	}
	return dsts, hdrs, payloads
}

func TestSealBatchOpenBatchRoundTrip(t *testing.T) {
	init, resp := pipePair(t)
	const n = 16
	pkts, hdrs, payloads := sealBatchPackets(t, init.TX, n)
	var s Scratch
	out := make([]OpenResult, n)
	resp.RX.OpenBatch(&s, pkts, out)
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("packet %d: %v", i, r.Err)
		}
		if !bytes.Equal(r.Hdr, hdrs[i]) || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("packet %d: roundtrip mismatch", i)
		}
	}
}

func TestSealBatchInteropWithSequentialOpen(t *testing.T) {
	// Packets sealed by SealBatch must be indistinguishable from Seal'd
	// packets to a sequential receiver, and vice versa.
	init, resp := pipePair(t)
	pkts, hdrs, payloads := sealBatchPackets(t, init.TX, 8)
	for i, pkt := range pkts {
		h, p, err := resp.RX.Open(pkt)
		if err != nil {
			t.Fatalf("sequential open of batch-sealed packet %d: %v", i, err)
		}
		if !bytes.Equal(h, hdrs[i]) || !bytes.Equal(p, payloads[i]) {
			t.Fatalf("packet %d: mismatch", i)
		}
	}
	// And sequentially sealed packets open fine as a batch.
	seq := make([][]byte, 4)
	for i := range seq {
		var err error
		seq[i], err = init.TX.Seal(nil, []byte("seq-hdr"), []byte("seq-payload"))
		if err != nil {
			t.Fatal(err)
		}
	}
	var s Scratch
	out := make([]OpenResult, len(seq))
	resp.RX.OpenBatch(&s, seq, out)
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("batch open of sequentially sealed packet %d: %v", i, r.Err)
		}
	}
}

func TestOpenBatchCorruptMidBatchIsolated(t *testing.T) {
	init, resp := pipePair(t)
	const n = 8
	pkts, hdrs, _ := sealBatchPackets(t, init.TX, n)
	// Corrupt one packet's ciphertext mid-batch and truncate another.
	pkts[3][len(pkts[3])-1] ^= 0xFF
	pkts[5] = pkts[5][:4]
	var s Scratch
	out := make([]OpenResult, n)
	resp.RX.OpenBatch(&s, pkts, out)
	for i, r := range out {
		switch i {
		case 3:
			if r.Err != ErrAuthFailed {
				t.Fatalf("packet 3: err=%v, want ErrAuthFailed", r.Err)
			}
		case 5:
			if r.Err == nil {
				t.Fatal("packet 5: truncated packet opened")
			}
		default:
			if r.Err != nil {
				t.Fatalf("packet %d poisoned by mid-batch corruption: %v", i, r.Err)
			}
			if !bytes.Equal(r.Hdr, hdrs[i]) {
				t.Fatalf("packet %d: header mismatch", i)
			}
		}
	}
}

func TestOpenBatchReplayWithinBatch(t *testing.T) {
	init, resp := pipePair(t)
	pkts, _, _ := sealBatchPackets(t, init.TX, 4)
	// Duplicate packet 1 into slot 2: the second occurrence must be
	// rejected exactly as it would be by sequential opens.
	pkts[2] = pkts[1]
	var s Scratch
	out := make([]OpenResult, len(pkts))
	resp.RX.OpenBatch(&s, pkts, out)
	if out[1].Err != nil {
		t.Fatalf("first occurrence: %v", out[1].Err)
	}
	if out[2].Err != ErrReplay {
		t.Fatalf("duplicate IV within batch: err=%v, want ErrReplay", out[2].Err)
	}
	if out[0].Err != nil || out[3].Err != nil {
		t.Fatalf("unrelated packets affected: %v %v", out[0].Err, out[3].Err)
	}
}

func TestOpenBatchAcrossRotation(t *testing.T) {
	// A batch can interleave packets from two epochs (sender rotated
	// mid-stream); each SPI run fetches its own cipher state.
	init, resp := pipePair(t)
	old, _, _ := sealBatchPackets(t, init.TX, 2)
	if err := init.TX.Rotate(); err != nil {
		t.Fatal(err)
	}
	fresh, _, _ := sealBatchPackets(t, init.TX, 2)
	mixed := [][]byte{old[0], fresh[0], old[1], fresh[1]}
	var s Scratch
	out := make([]OpenResult, len(mixed))
	resp.RX.OpenBatch(&s, mixed, out)
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("packet %d across rotation: %v", i, r.Err)
		}
	}
}

func TestSealStagedRoundTrip(t *testing.T) {
	init, resp := pipePair(t)
	hdr := []byte("staged-header")
	payload := []byte("staged payload bytes")
	pkt := make([]byte, SealedSize(len(hdr), len(payload)))
	StageSeal(pkt, hdr, payload)
	var s Scratch
	if err := init.TX.SealStaged(&s, [][]byte{pkt}, []int{len(hdr)}); err != nil {
		t.Fatal(err)
	}
	h, p, err := resp.RX.Open(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(h, hdr) || !bytes.Equal(p, payload) {
		t.Fatal("staged seal roundtrip mismatch")
	}
}
