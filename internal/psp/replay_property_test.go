package psp

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"interedge/internal/cryptutil"
)

// TestDuplicatesNeverDoubleDeliver is the property behind the chaos
// suite's no-double-delivery guarantee: however a hostile substrate
// duplicates and locally reorders packets — including across a key
// rotation — the replay window lets each sealed packet authenticate at
// most once, so a pipe handler can never observe the same packet twice.
func TestDuplicatesNeverDoubleDeliver(t *testing.T) {
	var master cryptutil.Key
	for i := range master {
		master[i] = byte(i)
	}
	const baseSPI = 0xBEEF00
	tx, err := NewTX(master, DirInitiatorToResponder, baseSPI)
	if err != nil {
		t.Fatal(err)
	}
	// Same direction on both ends: this test exercises the replay window,
	// not the handshake's direction split.
	rx, err := NewRX(master, DirInitiatorToResponder, baseSPI)
	if err != nil {
		t.Fatal(err)
	}

	const (
		packets      = 1000
		rotateEvery  = 300 // rekey three times mid-stream
		shuffleSpan  = 32  // local reorder, well inside the replay window
		duplicateFan = 3   // every packet delivered three times
	)
	type sealed struct {
		id  uint64
		pkt []byte
	}
	stream := make([]sealed, 0, packets)
	hdr := make([]byte, 8)
	for i := 0; i < packets; i++ {
		if i > 0 && i%rotateEvery == 0 {
			if err := tx.Rotate(); err != nil {
				t.Fatal(err)
			}
		}
		binary.BigEndian.PutUint64(hdr, uint64(i))
		pkt, err := tx.Seal(nil, hdr, []byte("body"))
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, sealed{id: uint64(i), pkt: pkt})
	}

	// Delivery schedule: every packet duplicateFan times, then a bounded
	// local shuffle (deterministic seed) so duplicates and originals
	// interleave out of order but never drift past a whole epoch.
	schedule := make([]sealed, 0, packets*duplicateFan)
	for _, s := range stream {
		for c := 0; c < duplicateFan; c++ {
			schedule = append(schedule, s)
		}
	}
	rng := rand.New(rand.NewSource(42))
	for i := range schedule {
		lo := i - shuffleSpan
		if lo < 0 {
			lo = 0
		}
		j := lo + rng.Intn(i-lo+1)
		schedule[i], schedule[j] = schedule[j], schedule[i]
	}

	delivered := make(map[uint64]int, packets)
	for _, s := range schedule {
		gotHdr, _, err := rx.Open(s.pkt)
		if err != nil {
			if err != ErrReplay {
				t.Fatalf("packet %d: unexpected error %v", s.id, err)
			}
			continue
		}
		id := binary.BigEndian.Uint64(gotHdr)
		if id != s.id {
			t.Fatalf("packet %d authenticated as %d", s.id, id)
		}
		delivered[id]++
	}
	for id, n := range delivered {
		if n != 1 {
			t.Fatalf("packet %d delivered %d times", id, n)
		}
	}
	if len(delivered) != packets {
		t.Fatalf("delivered %d distinct packets, want %d", len(delivered), packets)
	}
}

// TestCorruptEpochByteDoesNotKillPipe pins a hardening fix the chaos suite
// flushed out: a packet whose SPI epoch byte was corrupted (or forged) must
// not advance the receiver's epoch state — that happened pre-auth once, so
// one flipped bit evicted the live epoch's keys and every later genuine
// packet was rejected with ErrBadEpoch, permanently killing the pipe.
func TestCorruptEpochByteDoesNotKillPipe(t *testing.T) {
	var master cryptutil.Key
	for i := range master {
		master[i] = byte(i * 3)
	}
	const baseSPI = 0xABCD00
	tx, err := NewTX(master, DirInitiatorToResponder, baseSPI)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewRX(master, DirInitiatorToResponder, baseSPI)
	if err != nil {
		t.Fatal(err)
	}
	seal := func(i int) []byte {
		pkt, err := tx.Seal(nil, []byte{byte(i)}, []byte("body"))
		if err != nil {
			t.Fatal(err)
		}
		return pkt
	}
	if _, _, err := rx.Open(seal(0)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the SPI's epoch byte (packet byte 3) to claim a far-future
	// epoch. Authentication must fail — and nothing else may change.
	evil := seal(1)
	evil[3] ^= 0x40
	if _, _, err := rx.Open(evil); err == nil {
		t.Fatal("corrupted packet authenticated")
	}
	// Genuine epoch-0 traffic must still flow.
	for i := 2; i < 10; i++ {
		if _, _, err := rx.Open(seal(i)); err != nil {
			t.Fatalf("genuine packet %d after corrupt-epoch packet: %v", i, err)
		}
	}
	// And a real rotation must still be accepted.
	if err := tx.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rx.Open(seal(10)); err != nil {
		t.Fatalf("post-rotate packet: %v", err)
	}
}

// TestReplayAcrossRekeyRejected pins the narrower guarantee: a packet
// from epoch e, already delivered, must still be rejected when replayed
// after the sender rekeys to e+1 — each epoch keeps its own window.
func TestReplayAcrossRekeyRejected(t *testing.T) {
	var master cryptutil.Key
	tx, err := NewTX(master, DirInitiatorToResponder, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewRX(master, DirInitiatorToResponder, 0x100)
	if err != nil {
		t.Fatal(err)
	}
	old, err := tx.Seal(nil, []byte("h0"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rx.Open(old); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rotate(); err != nil {
		t.Fatal(err)
	}
	fresh, err := tx.Seal(nil, []byte("h1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rx.Open(fresh); err != nil {
		t.Fatal(err)
	}
	// The receiver now tracks epoch 1 but must remember epoch 0's window.
	if _, _, err := rx.Open(old); err != ErrReplay {
		t.Fatalf("replay across rekey: err = %v, want ErrReplay", err)
	}
}
