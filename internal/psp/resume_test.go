package psp

import (
	"bytes"
	"errors"
	"testing"

	"interedge/internal/cryptutil"
)

// TestResumeAtEpoch models a drain handoff: SN A holds an established pipe
// with host H, exports its epochs, and SN B resumes one TX epoch above.
// H's receiver must accept B's packets with no coordination, B's receiver
// must accept H's in-flight packets on the old epoch, and H's subsequent
// rotation must keep working.
func TestResumeAtEpoch(t *testing.T) {
	var master cryptutil.Key
	for i := range master {
		master[i] = byte(i * 7)
	}
	const baseSPI = 0xDEADBE00

	// SN side was the initiator; the host is the responder.
	snA, err := NewPipeCrypto(master, true, baseSPI)
	if err != nil {
		t.Fatal(err)
	}
	host, err := NewPipeCrypto(master, false, baseSPI)
	if err != nil {
		t.Fatal(err)
	}

	// Traffic both ways, plus a rotation on each side, to move epochs off 0.
	exchange := func(tag string, tx *TX, rx *RX) {
		pkt, err := tx.Seal(nil, []byte("hdr-"+tag), []byte("pay"))
		if err != nil {
			t.Fatalf("%s seal: %v", tag, err)
		}
		hdr, _, err := rx.Open(pkt)
		if err != nil {
			t.Fatalf("%s open: %v", tag, err)
		}
		if !bytes.Equal(hdr, []byte("hdr-"+tag)) {
			t.Fatalf("%s header mismatch", tag)
		}
	}
	exchange("a1", snA.TX, host.RX)
	exchange("h1", host.TX, snA.RX)
	if err := snA.TX.Rotate(); err != nil {
		t.Fatal(err)
	}
	if err := host.TX.Rotate(); err != nil {
		t.Fatal(err)
	}
	exchange("a2", snA.TX, host.RX)
	exchange("h2", host.TX, snA.RX)

	txE, rxE := snA.TX.Epoch(), snA.RX.Epoch()
	if txE != 1 || rxE != 1 {
		t.Fatalf("exported epochs tx=%d rx=%d, want 1/1", txE, rxE)
	}

	// SN B imports: TX resumes one epoch above A's, RX at the host's
	// current sending epoch.
	snB, err := NewPipeCryptoAt(master, true, baseSPI, txE+1, rxE)
	if err != nil {
		t.Fatal(err)
	}
	if snB.TX.Epoch() != txE+1 {
		t.Fatalf("imported TX epoch %d, want %d", snB.TX.Epoch(), txE+1)
	}

	// B -> H on the bumped epoch: host accepts without any signal.
	exchange("b1", snB.TX, host.RX)
	// H -> B still on the host's current epoch.
	exchange("h3", host.TX, snB.RX)
	// Host rotates (it does so on rebind); B keeps up.
	if err := host.TX.Rotate(); err != nil {
		t.Fatal(err)
	}
	exchange("h4", host.TX, snB.RX)

	// B's receiver must reject epochs older than previous, like any
	// receiver that rotated past them.
	stale, err := NewTXAt(master, DirResponderToInitiator, baseSPI, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Advance B's RX view to epoch 2 first (h4 committed epoch 2).
	pkt, err := stale.Seal(nil, []byte("old"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := snB.RX.Open(pkt); !errors.Is(err, ErrBadEpoch) {
		t.Fatalf("stale-epoch open err=%v, want ErrBadEpoch", err)
	}
}

// TestResumeBaseSPIValidation pins the low-byte-zero invariant on the
// resume constructors.
func TestResumeBaseSPIValidation(t *testing.T) {
	var master cryptutil.Key
	if _, err := NewTXAt(master, DirInitiatorToResponder, 0x01, 5); err == nil {
		t.Fatal("NewTXAt accepted nonzero SPI low byte")
	}
	if _, err := NewRXAt(master, DirInitiatorToResponder, 0x01, 5); err == nil {
		t.Fatal("NewRXAt accepted nonzero SPI low byte")
	}
}
