package psp

import (
	"sync"
	"testing"

	"interedge/internal/cryptutil"
)

// fuzzPipe holds a deterministic sealed-packet corpus and a receiver for
// FuzzPSPOpen: a fixed master secret, a handful of genuine packets (by
// exact bytes), and an RX with anti-replay off so re-running the same
// input never flips the verdict.
type fuzzPipe struct {
	rx      *RX
	genuine map[string]bool
}

var (
	fuzzOnce sync.Once
	fuzz     fuzzPipe
)

func fuzzCorpus(t testing.TB) ([][]byte, *fuzzPipe) {
	var master cryptutil.Key
	for i := range master {
		master[i] = byte(i * 7)
	}
	const baseSPI = 0xCAFE00
	tx, err := NewTX(master, DirInitiatorToResponder, baseSPI)
	if err != nil {
		t.Fatal(err)
	}
	var packets [][]byte
	seal := func(hdr, payload []byte) {
		pkt, err := tx.Seal(nil, hdr, payload)
		if err != nil {
			t.Fatal(err)
		}
		packets = append(packets, pkt)
	}
	seal([]byte("header-one"), []byte("payload-one"))
	seal([]byte{0, 0, 1, 0x14, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0}, nil)
	seal(nil, []byte("payload-only"))
	if err := tx.Rotate(); err != nil {
		t.Fatal(err)
	}
	seal([]byte("after-rotate"), []byte("x"))

	fuzzOnce.Do(func() {
		rx, err := NewRX(master, DirInitiatorToResponder, baseSPI)
		if err != nil {
			t.Fatal(err)
		}
		rx.SetReplayCheck(false)
		fuzz.rx = rx
		fuzz.genuine = make(map[string]bool, len(packets))
		for _, p := range packets {
			fuzz.genuine[string(p)] = true
		}
	})
	return packets, &fuzz
}

// FuzzPSPOpen feeds arbitrary (and mutated-genuine) packets to RX.Open.
// It must never panic, and — since the AEAD tag covers the encrypted
// header, the cleartext prefix, and the payload — no mutated packet may
// ever authenticate.
func FuzzPSPOpen(f *testing.F) {
	packets, _ := fuzzCorpus(f)
	for _, p := range packets {
		f.Add(p)
	}
	// A few shaped non-genuine seeds: truncations and bit flips.
	p0 := packets[0]
	f.Add(p0[:len(p0)-1])
	f.Add(p0[:12])
	flipped := append([]byte(nil), p0...)
	flipped[len(flipped)-1] ^= 0x01
	f.Add(flipped)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		_, fp := fuzzCorpus(t)
		hdr, payload, err := fp.rx.Open(data)
		if err != nil {
			return
		}
		if !fp.genuine[string(data)] {
			t.Fatalf("forged packet authenticated: %x", data)
		}
		// Sanity on genuine packets: layout fields must be self-consistent.
		if SealedSize(len(hdr), len(payload)) != len(data) {
			t.Fatalf("size mismatch: hdr=%d payload=%d packet=%d", len(hdr), len(payload), len(data))
		}
	})
}
