package psp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"interedge/internal/cryptutil"
)

func pipePair(t testing.TB) (*PipeCrypto, *PipeCrypto) {
	t.Helper()
	master := cryptutil.NewRandomKey()
	init, err := NewPipeCrypto(master, true, 0xAB00)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := NewPipeCrypto(master, false, 0xAB00)
	if err != nil {
		t.Fatal(err)
	}
	return init, resp
}

func TestSealOpenRoundTrip(t *testing.T) {
	init, resp := pipePair(t)
	hdr := []byte("ilp-header-bytes")
	payload := []byte("application payload, opaque to the SN")
	pkt, err := init.TX.Seal(nil, hdr, payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt) != SealedSize(len(hdr), len(payload)) {
		t.Fatalf("sealed size %d, want %d", len(pkt), SealedSize(len(hdr), len(payload)))
	}
	gotHdr, gotPayload, err := resp.RX.Open(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotHdr, hdr) || !bytes.Equal(gotPayload, payload) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestBothDirectionsIndependent(t *testing.T) {
	init, resp := pipePair(t)
	p1, err := init.TX.Seal(nil, []byte("i2r"), nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := resp.TX.Seal(nil, []byte("r2i"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if h, _, err := resp.RX.Open(p1); err != nil || string(h) != "i2r" {
		t.Fatalf("responder open: %v %q", err, h)
	}
	if h, _, err := init.RX.Open(p2); err != nil || string(h) != "r2i" {
		t.Fatalf("initiator open: %v %q", err, h)
	}
	// A direction's own traffic must not decrypt on the same side.
	if _, _, err := init.RX.Open(p1); err == nil {
		t.Fatal("initiator decrypted its own i2r packet")
	}
}

func TestTamperedPacketRejected(t *testing.T) {
	init, resp := pipePair(t)
	pkt, err := init.TX.Seal(nil, []byte("header"), []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 5, 12, 14, len(pkt) - 1} {
		mut := append([]byte(nil), pkt...)
		mut[idx] ^= 0x01
		if _, _, err := resp.RX.Open(mut); err == nil {
			t.Fatalf("tampered byte %d accepted", idx)
		}
	}
}

// §4: ILP must be decryptable out of order (PSP requirement).
func TestPSPOutOfOrder(t *testing.T) {
	init, resp := pipePair(t)
	const n = 100
	pkts := make([][]byte, n)
	for i := range pkts {
		var err error
		pkts[i], err = init.TX.Seal(nil, []byte{byte(i)}, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(42))
	rng.Shuffle(n, func(i, j int) { pkts[i], pkts[j] = pkts[j], pkts[i] })
	for _, p := range pkts {
		if _, _, err := resp.RX.Open(p); err != nil {
			t.Fatalf("out-of-order open failed: %v", err)
		}
	}
}

func TestReplayRejected(t *testing.T) {
	init, resp := pipePair(t)
	pkt, err := init.TX.Seal(nil, []byte("once"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := resp.RX.Open(pkt); err != nil {
		t.Fatal(err)
	}
	if _, _, err := resp.RX.Open(pkt); err != ErrReplay {
		t.Fatalf("replay err = %v, want ErrReplay", err)
	}
}

func TestReplayCheckDisabled(t *testing.T) {
	init, resp := pipePair(t)
	resp.RX.SetReplayCheck(false)
	pkt, _ := init.TX.Seal(nil, []byte("again"), nil)
	for i := 0; i < 3; i++ {
		if _, _, err := resp.RX.Open(pkt); err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
	}
}

func TestVeryOldPacketOutsideWindowRejected(t *testing.T) {
	init, resp := pipePair(t)
	old, _ := init.TX.Seal(nil, []byte("old"), nil)
	// Send replayBits+10 more packets, delivering only the last.
	var last []byte
	for i := 0; i < replayBits+10; i++ {
		last, _ = init.TX.Seal(nil, []byte("new"), nil)
	}
	if _, _, err := resp.RX.Open(last); err != nil {
		t.Fatal(err)
	}
	if _, _, err := resp.RX.Open(old); err != ErrReplay {
		t.Fatalf("stale packet err = %v, want ErrReplay", err)
	}
}

func TestKeyRotationSenderFirst(t *testing.T) {
	init, resp := pipePair(t)
	pre, _ := init.TX.Seal(nil, []byte("epoch0"), nil)
	if err := init.TX.Rotate(); err != nil {
		t.Fatal(err)
	}
	post, _ := init.TX.Seal(nil, []byte("epoch1"), nil)
	// New-epoch packet arrives first; receiver learns epoch 1 lazily.
	if h, _, err := resp.RX.Open(post); err != nil || string(h) != "epoch1" {
		t.Fatalf("post-rotation open: %v %q", err, h)
	}
	// Previous-epoch packet still accepted during rotation.
	if h, _, err := resp.RX.Open(pre); err != nil || string(h) != "epoch0" {
		t.Fatalf("pre-rotation open: %v %q", err, h)
	}
}

func TestTwoEpochsBehindRejected(t *testing.T) {
	init, resp := pipePair(t)
	old, _ := init.TX.Seal(nil, []byte("e0"), nil)
	for i := 0; i < 2; i++ {
		if err := init.TX.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	cur, _ := init.TX.Seal(nil, []byte("e2"), nil)
	if _, _, err := resp.RX.Open(cur); err != nil {
		t.Fatal(err)
	}
	if _, _, err := resp.RX.Open(old); err == nil {
		t.Fatal("epoch-0 packet accepted after two rotations")
	}
}

func TestManyRotationsIncludingEpochByteWrap(t *testing.T) {
	init, resp := pipePair(t)
	for i := 0; i < 300; i++ { // crosses the 256 epoch-low-byte wrap
		pkt, err := init.TX.Seal(nil, []byte{byte(i)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if h, _, err := resp.RX.Open(pkt); err != nil || h[0] != byte(i) {
			t.Fatalf("rotation %d: %v", i, err)
		}
		if err := init.TX.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWrongPipeKeyRejected(t *testing.T) {
	init, _ := pipePair(t)
	otherMaster := cryptutil.NewRandomKey()
	other, err := NewPipeCrypto(otherMaster, false, 0xAB00)
	if err != nil {
		t.Fatal(err)
	}
	pkt, _ := init.TX.Seal(nil, []byte("secret"), nil)
	if _, _, err := other.RX.Open(pkt); err == nil {
		t.Fatal("packet decrypted with wrong master key")
	}
}

func TestWrongSPIRejected(t *testing.T) {
	master := cryptutil.NewRandomKey()
	init, _ := NewPipeCrypto(master, true, 0xAB00)
	respOther, _ := NewPipeCrypto(master, false, 0xCD00)
	pkt, _ := init.TX.Seal(nil, []byte("x"), nil)
	if _, _, err := respOther.RX.Open(pkt); err == nil {
		t.Fatal("packet with foreign SPI accepted")
	}
}

func TestBaseSPIWithNonzeroLowByteRejected(t *testing.T) {
	master := cryptutil.NewRandomKey()
	if _, err := NewTX(master, DirInitiatorToResponder, 0xAB01); err == nil {
		t.Fatal("NewTX accepted SPI with nonzero low byte")
	}
	if _, err := NewRX(master, DirInitiatorToResponder, 0xAB01); err == nil {
		t.Fatal("NewRX accepted SPI with nonzero low byte")
	}
}

func TestTruncatedPacketsRejected(t *testing.T) {
	init, resp := pipePair(t)
	pkt, _ := init.TX.Seal(nil, []byte("header"), []byte("pay"))
	for cut := 0; cut < len(pkt)-len("pay"); cut++ {
		if _, _, err := resp.RX.Open(pkt[:cut]); err == nil {
			t.Fatalf("truncated packet (%d bytes) accepted", cut)
		}
	}
}

func TestSealAppendsToDst(t *testing.T) {
	init, resp := pipePair(t)
	prefix := []byte("existing")
	out, err := init.TX.Seal(prefix, []byte("h"), []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("Seal did not preserve dst prefix")
	}
	if _, _, err := resp.RX.Open(out[len(prefix):]); err != nil {
		t.Fatal(err)
	}
}

// Property: seal/open roundtrips for arbitrary header and payload contents.
func TestSealOpenProperty(t *testing.T) {
	init, resp := pipePair(t)
	resp.RX.SetReplayCheck(false)
	f := func(hdr, payload []byte) bool {
		if len(hdr) > 4096 {
			hdr = hdr[:4096]
		}
		pkt, err := init.TX.Seal(nil, hdr, payload)
		if err != nil {
			return false
		}
		gotHdr, gotPayload, err := resp.RX.Open(pkt)
		if err != nil {
			return false
		}
		return bytes.Equal(gotHdr, hdr) && bytes.Equal(gotPayload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: replay window never accepts the same IV twice, regardless of
// arrival order.
func TestReplayWindowProperty(t *testing.T) {
	f := func(ivsRaw []uint16) bool {
		w := &replayWindow{}
		accepted := map[uint64]bool{}
		for _, raw := range ivsRaw {
			iv := uint64(raw)
			err := w.check(iv)
			if err == nil {
				if accepted[iv] {
					return false // double accept
				}
				accepted[iv] = true
				w.mark(iv)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSeal(b *testing.B) {
	master := cryptutil.NewRandomKey()
	tx, _ := NewTX(master, DirInitiatorToResponder, 0)
	hdr := make([]byte, 32)
	payload := make([]byte, 1024)
	buf := make([]byte, 0, SealedSize(len(hdr), len(payload)))
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tx.Seal(buf[:0], hdr, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpen(b *testing.B) {
	master := cryptutil.NewRandomKey()
	tx, _ := NewTX(master, DirInitiatorToResponder, 0)
	rx, _ := NewRX(master, DirInitiatorToResponder, 0)
	rx.SetReplayCheck(false)
	pkt, _ := tx.Seal(nil, make([]byte, 32), make([]byte, 1024))
	b.SetBytes(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rx.Open(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
