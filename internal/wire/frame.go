package wire

// FrameType is the first byte of every datagram payload, distinguishing
// pipe-establishment traffic from sealed ILP packets.
type FrameType byte

const (
	// FrameHandshake1 carries the initiator's handshake message.
	FrameHandshake1 FrameType = 0x01
	// FrameHandshake2 carries the responder's handshake message.
	FrameHandshake2 FrameType = 0x02
	// FrameILP carries a PSP-sealed ILP packet.
	FrameILP FrameType = 0x03
)
