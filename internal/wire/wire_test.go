package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestILPHeaderRoundTrip(t *testing.T) {
	h := ILPHeader{Service: SvcPubSub, Conn: 0xdeadbeefcafe, Data: []byte("topic=news")}
	enc, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var got ILPHeader
	n, err := got.DecodeFromBytes(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d bytes, want %d", n, len(enc))
	}
	if got.Service != h.Service || got.Conn != h.Conn || !bytes.Equal(got.Data, h.Data) {
		t.Fatalf("roundtrip mismatch: %+v != %+v", got, h)
	}
}

func TestILPHeaderEmptyData(t *testing.T) {
	h := ILPHeader{Service: SvcNull, Conn: 1}
	enc, err := h.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != ILPHeaderFixedSize {
		t.Fatalf("encoded size %d, want %d", len(enc), ILPHeaderFixedSize)
	}
	var got ILPHeader
	if _, err := got.DecodeFromBytes(enc); err != nil {
		t.Fatal(err)
	}
	if len(got.Data) != 0 {
		t.Fatalf("expected empty data, got %d bytes", len(got.Data))
	}
}

func TestILPHeaderTruncated(t *testing.T) {
	h := ILPHeader{Service: SvcEcho, Conn: 7, Data: []byte("hello")}
	enc, _ := h.Encode()
	for cut := 0; cut < len(enc); cut++ {
		var got ILPHeader
		if _, err := got.DecodeFromBytes(enc[:cut]); err == nil {
			t.Fatalf("decode of %d/%d bytes succeeded", cut, len(enc))
		}
	}
}

func TestILPHeaderOversizedData(t *testing.T) {
	h := ILPHeader{Service: SvcEcho, Conn: 7, Data: make([]byte, MaxServiceData+1)}
	if _, err := h.Encode(); err != ErrHeaderTooBig {
		t.Fatalf("err = %v, want ErrHeaderTooBig", err)
	}
}

func TestILPHeaderSerializeBufferTooSmall(t *testing.T) {
	h := ILPHeader{Service: SvcEcho, Conn: 7, Data: []byte("xy")}
	buf := make([]byte, h.EncodedSize()-1)
	if _, err := h.SerializeTo(buf); err == nil {
		t.Fatal("expected buffer-too-small error")
	}
}

func TestPSPHeaderRoundTrip(t *testing.T) {
	h := PSPHeader{SPI: 0x12345600, IV: 0xfeedfacecafebeef}
	buf := make([]byte, PSPHeaderSize)
	if _, err := h.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	var got PSPHeader
	n, err := got.DecodeFromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != PSPHeaderSize || got != h {
		t.Fatalf("roundtrip mismatch: %+v != %+v", got, h)
	}
}

func TestPSPHeaderTruncated(t *testing.T) {
	var h PSPHeader
	if _, err := h.DecodeFromBytes(make([]byte, PSPHeaderSize-1)); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestDatagramRoundTripV4AndV6(t *testing.T) {
	cases := []Datagram{
		{Src: MustAddr("10.0.0.1"), Dst: MustAddr("10.0.0.2"), Payload: []byte("v4")},
		{Src: MustAddr("fd00::1"), Dst: MustAddr("fd00::2"), Payload: []byte("v6 payload")},
		{Src: MustAddr("fd00::1"), Dst: MustAddr("10.0.0.9"), Payload: nil},
	}
	for _, d := range cases {
		enc, err := d.Encode()
		if err != nil {
			t.Fatal(err)
		}
		var got Datagram
		n, err := got.DecodeFromBytes(enc)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d, want %d", n, len(enc))
		}
		if got.Src != d.Src || got.Dst != d.Dst || !bytes.Equal(got.Payload, d.Payload) {
			t.Fatalf("roundtrip mismatch: %+v != %+v", got, d)
		}
	}
}

func TestDatagramOverMTU(t *testing.T) {
	d := Datagram{Src: MustAddr("10.0.0.1"), Dst: MustAddr("10.0.0.2"), Payload: make([]byte, MTU+1)}
	if _, err := d.Encode(); err == nil {
		t.Fatal("expected MTU error")
	}
}

func TestDatagramTruncated(t *testing.T) {
	d := Datagram{Src: MustAddr("10.0.0.1"), Dst: MustAddr("10.0.0.2"), Payload: []byte("abc")}
	enc, _ := d.Encode()
	var got Datagram
	if _, err := got.DecodeFromBytes(enc[:DatagramHeaderSize+2]); err != ErrTruncated {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
}

func TestServiceIDString(t *testing.T) {
	if SvcPubSub.String() != "pubsub" {
		t.Fatalf("SvcPubSub.String() = %q", SvcPubSub.String())
	}
	if got := ServiceID(0x9999).String(); got != "svc-0x9999" {
		t.Fatalf("unknown service string = %q", got)
	}
}

func TestFlowKeyUsableAsMapKey(t *testing.T) {
	m := map[FlowKey]int{}
	k1 := FlowKey{Src: MustAddr("10.0.0.1"), Service: SvcNull, Conn: 1}
	k2 := FlowKey{Src: MustAddr("10.0.0.1"), Service: SvcNull, Conn: 1}
	m[k1] = 42
	if m[k2] != 42 {
		t.Fatal("equal flow keys did not collide in map")
	}
	if k1.String() == "" {
		t.Fatal("empty FlowKey string")
	}
}

// Property: ILP header roundtrips for arbitrary contents.
func TestILPHeaderRoundTripProperty(t *testing.T) {
	f := func(svc uint32, conn uint64, data []byte) bool {
		if len(data) > MaxServiceData {
			data = data[:MaxServiceData]
		}
		h := ILPHeader{Service: ServiceID(svc), Conn: ConnectionID(conn), Data: data}
		enc, err := h.Encode()
		if err != nil {
			return false
		}
		var got ILPHeader
		n, err := got.DecodeFromBytes(enc)
		if err != nil || n != len(enc) {
			return false
		}
		return got.Service == h.Service && got.Conn == h.Conn && bytes.Equal(got.Data, h.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding arbitrary bytes never panics and consumed bytes never
// exceed input length.
func TestILPHeaderDecodeNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) bool {
		var h ILPHeader
		n, err := h.DecodeFromBytes(data)
		if err != nil {
			return n == 0
		}
		return n <= len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
