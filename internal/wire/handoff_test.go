package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func sampleHandoff() HandoffState {
	h := HandoffState{
		Host:      MustAddr("fd00::1:1"),
		Initiator: true,
		BaseSPI:   0xAABBCC00,
		TxEpoch:   3,
		RxEpoch:   2,
		Warmth: []FlowKey{
			{Src: MustAddr("fd00::2:1"), Service: SvcIPFwd, Conn: 77},
			{Src: MustAddr("192.0.2.9"), Service: SvcEcho, Conn: 1},
		},
	}
	for i := range h.Identity {
		h.Identity[i] = byte(i)
	}
	for i := range h.Master {
		h.Master[i] = byte(0xF0 ^ i)
	}
	return h
}

func TestHandoffRoundTrip(t *testing.T) {
	h := sampleHandoff()
	enc, err := h.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(enc) != h.EncodedSize() {
		t.Fatalf("encoded %d bytes, EncodedSize says %d", len(enc), h.EncodedSize())
	}
	var got HandoffState
	n, err := got.DecodeFromBytes(enc)
	if err != nil {
		t.Fatalf("DecodeFromBytes: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d bytes", n, len(enc))
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestHandoffNoWarmth(t *testing.T) {
	h := sampleHandoff()
	h.Warmth = nil
	h.Initiator = false
	enc, err := h.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(enc) != handoffFixedSize {
		t.Fatalf("encoded %d bytes, want fixed %d", len(enc), handoffFixedSize)
	}
	var got HandoffState
	if _, err := got.DecodeFromBytes(enc); err != nil {
		t.Fatalf("DecodeFromBytes: %v", err)
	}
	if !reflect.DeepEqual(got, h) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestHandoffTruncated(t *testing.T) {
	h := sampleHandoff()
	enc, err := h.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	for cut := 0; cut < len(enc); cut++ {
		var got HandoffState
		if _, err := got.DecodeFromBytes(enc[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut=%d: err=%v, want ErrTruncated", cut, err)
		}
	}
}

func TestHandoffBadVersion(t *testing.T) {
	h := sampleHandoff()
	enc, _ := h.Encode()
	enc[0] = 0x7F
	var got HandoffState
	if _, err := got.DecodeFromBytes(enc); !errors.Is(err, ErrHandoffVersion) {
		t.Fatalf("err=%v, want ErrHandoffVersion", err)
	}
}

func TestHandoffWarmthCap(t *testing.T) {
	h := sampleHandoff()
	h.Warmth = make([]FlowKey, MaxHandoffWarmth+1)
	if _, err := h.Encode(); !errors.Is(err, ErrHandoffTooLarge) {
		t.Fatalf("encode err=%v, want ErrHandoffTooLarge", err)
	}
	h.Warmth = h.Warmth[:MaxHandoffWarmth]
	enc, err := h.Encode()
	if err != nil {
		t.Fatalf("Encode at cap: %v", err)
	}
	if enc[94] != byte(MaxHandoffWarmth>>8) || enc[95] != byte(MaxHandoffWarmth&0xFF) {
		t.Fatalf("hint count field %x%x, want %d", enc[94], enc[95], MaxHandoffWarmth)
	}
	// A forged over-cap count must be rejected, not allocated.
	enc[94], enc[95] = 0xFF, 0xFF
	var got HandoffState
	if _, err := got.DecodeFromBytes(enc); !errors.Is(err, ErrHandoffTooLarge) {
		t.Fatalf("decode err=%v, want ErrHandoffTooLarge", err)
	}
}

func TestHandoffFitsOneDatagram(t *testing.T) {
	h := sampleHandoff()
	h.Warmth = make([]FlowKey, MaxHandoffWarmth)
	if h.EncodedSize() > MTU-DatagramHeaderSize-PSPHeaderSize-ILPHeaderFixedSize-64 {
		t.Fatalf("max handoff state %d bytes cannot ride one sealed datagram", h.EncodedSize())
	}
	if h.EncodedSize() > MaxServiceData {
		t.Fatalf("max handoff state %d bytes exceeds MaxServiceData %d", h.EncodedSize(), MaxServiceData)
	}
}

func TestPipeMoveRoundTrip(t *testing.T) {
	succ := MustAddr("fd00::a:2")
	enc := EncodePipeMove(succ)
	if len(enc) != PipeMoveSize {
		t.Fatalf("encoded %d bytes, want %d", len(enc), PipeMoveSize)
	}
	got, err := DecodePipeMove(enc)
	if err != nil {
		t.Fatalf("DecodePipeMove: %v", err)
	}
	if got != succ {
		t.Fatalf("got %v, want %v", got, succ)
	}
	if _, err := DecodePipeMove(enc[:PipeMoveSize-1]); !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncated err=%v, want ErrTruncated", err)
	}
}

func FuzzHandoffDecode(f *testing.F) {
	h := sampleHandoff()
	if enc, err := h.Encode(); err == nil {
		f.Add(enc)
	}
	h.Warmth = nil
	if enc, err := h.Encode(); err == nil {
		f.Add(enc)
	}
	f.Add(make([]byte, handoffFixedSize-1))
	over := make([]byte, handoffFixedSize)
	over[0] = handoffVersion
	over[94], over[95] = 0xFF, 0xFF
	f.Add(over)

	f.Fuzz(func(t *testing.T, data []byte) {
		var h HandoffState
		n, err := h.DecodeFromBytes(data)
		if err != nil {
			return
		}
		if n < handoffFixedSize || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		if len(h.Warmth) > MaxHandoffWarmth {
			t.Fatalf("decoded %d warmth hints, cap is %d", len(h.Warmth), MaxHandoffWarmth)
		}
		enc, err := h.Encode()
		if err != nil {
			t.Fatalf("re-encode of decoded state failed: %v", err)
		}
		if !bytes.Equal(enc, data[:n]) {
			// Addr.Unmap makes v4-mapped forms non-canonical; decode again
			// and require a fixed point instead of byte equality.
			var h2 HandoffState
			if _, err := h2.DecodeFromBytes(enc); err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if !reflect.DeepEqual(h2, h) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", h2, h)
			}
		}
	})
}
