// Package wire defines the on-the-wire formats of the InterEdge: the ILP
// (Interposition-Layer Protocol) header, the PSP-style encryption header
// that protects it, and the L3 datagram framing used by the network
// substrate.
//
// The encoding style follows the layered decode/serialize idiom: each header
// type can decode itself from a byte slice (reporting how many bytes it
// consumed) and serialize itself into one, so the pipe-terminus can operate
// on packets with minimal copying.
//
// Per §4 of the paper, an ILP packet carried inside an L3 datagram looks
// like:
//
//	+----------------+---------------------------+-----+------------------+
//	| PSP header     | ciphertext of ILP header  | tag | application data |
//	| SPI(4) IV(8)   | svc(4) conn(8) len(2) ... | 16  | (opaque, authed) |
//	+----------------+---------------------------+-----+------------------+
//
// Only the ILP header is encrypted with the pipe's shared key; application
// data is protected end-to-end by the endpoints and is covered here only by
// the authentication tag.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Addr identifies a node (host or SN) at the emulated L3 layer. We reuse
// netip.Addr: it is compact, comparable, and usable as a map key, which the
// pipe-terminus relies on for peer lookup.
type Addr = netip.Addr

// MustAddr parses a textual address and panics on failure. For tests,
// examples, and static topology definitions.
func MustAddr(s string) Addr {
	return netip.MustParseAddr(s)
}

// ShardIndex maps an address onto one of n shards (FNV-1a over the
// 16-byte form). Both the pipe manager's RX-worker sharding and the
// decision cache's source-affine striping use this same function, so the
// worker that owns a source also owns that source's cache shard — lookups
// from the fast path never touch a shard another worker is writing.
func ShardIndex(a Addr, n int) int {
	const (
		offset = uint64(14695981039346656037)
		prime  = uint64(1099511628211)
	)
	h := offset
	b := a.As16()
	for _, c := range b {
		h = (h ^ uint64(c)) * prime
	}
	return int(h % uint64(n))
}

// ServiceID identifies a standardized InterEdge service. Service IDs are
// assigned by the governance body standardizing service modules (§3.1).
type ServiceID uint32

// ConnectionID identifies one connection within a service. Connection IDs
// are chosen by the initiating host and are unique per (source, service).
type ConnectionID uint64

// Well-known service IDs. IDs below 0x100 are reserved for architecture
// internals; standardized services start at 0x100.
const (
	// SvcNone marks a packet carrying no service request; the
	// pipe-terminus forwards it without invoking any module (the paper's
	// "no-service" baseline).
	SvcNone ServiceID = 0x00
	// SvcControl carries the out-of-band host<->SN control protocol (§3.2
	// second invocation style).
	SvcControl ServiceID = 0x01
	// SvcPeering carries inter-edomain peering maintenance traffic.
	SvcPeering ServiceID = 0x02
	// SvcPipeProbe and SvcPipeProbeAck carry pipe-liveness keepalives.
	// They are sealed like any ILP packet — an ack proves the peer still
	// holds the pipe keys — but are consumed inside the pipe manager and
	// never reach a PacketHandler.
	SvcPipeProbe    ServiceID = 0x03
	SvcPipeProbeAck ServiceID = 0x04
	// SvcPipeMove tells a host, over its existing sealed pipe, that its
	// serving SN is draining and names the successor. The host rebinds the
	// pipe to the new address (keeping its keys, rotating its TX epoch)
	// instead of tearing it down.
	SvcPipeMove ServiceID = 0x05
	// SvcHandoff carries serialized pipe state (HandoffState) between
	// sibling SNs over their sealed inter-SN pipe during a drain.
	SvcHandoff ServiceID = 0x06

	SvcNull      ServiceID = 0x100
	SvcIPFwd     ServiceID = 0x101
	SvcPubSub    ServiceID = 0x102
	SvcMulticast ServiceID = 0x103
	SvcAnycast   ServiceID = 0x104
	SvcODNS      ServiceID = 0x105
	SvcRelay     ServiceID = 0x106
	SvcMixnet    ServiceID = 0x107
	SvcDDoS      ServiceID = 0x108
	SvcQoS       ServiceID = 0x109
	SvcCDNCache  ServiceID = 0x10A
	SvcMsgQueue  ServiceID = 0x10B
	SvcOrdered   ServiceID = 0x10C
	SvcBulk      ServiceID = 0x10D
	SvcVPN       ServiceID = 0x10E
	SvcZTNA      ServiceID = 0x10F
	SvcSDWAN     ServiceID = 0x110
	SvcFirewall  ServiceID = 0x111
	SvcAttest    ServiceID = 0x112
	SvcMobility  ServiceID = 0x113
	SvcEcho      ServiceID = 0x114
	// SvcWebBundle is the "IP-like service and a caching service" bundle
	// of §3.2, with caching controlled per-invocation via header metadata.
	SvcWebBundle ServiceID = 0x115
)

// String returns a human-readable name for well-known service IDs.
func (s ServiceID) String() string {
	if name, ok := serviceNames[s]; ok {
		return name
	}
	return fmt.Sprintf("svc-0x%x", uint32(s))
}

var serviceNames = map[ServiceID]string{
	SvcNone:         "none",
	SvcControl:      "control",
	SvcPeering:      "peering",
	SvcPipeProbe:    "pipe-probe",
	SvcPipeProbeAck: "pipe-probe-ack",
	SvcPipeMove:     "pipe-move",
	SvcHandoff:      "handoff",
	SvcNull:         "null",
	SvcIPFwd:        "ipfwd",
	SvcPubSub:       "pubsub",
	SvcMulticast:    "multicast",
	SvcAnycast:      "anycast",
	SvcODNS:         "odns",
	SvcRelay:        "relay",
	SvcMixnet:       "mixnet",
	SvcDDoS:         "ddos",
	SvcQoS:          "qos",
	SvcCDNCache:     "cdncache",
	SvcMsgQueue:     "msgqueue",
	SvcOrdered:      "ordered",
	SvcBulk:         "bulk",
	SvcVPN:          "vpn",
	SvcZTNA:         "ztna",
	SvcSDWAN:        "sdwan",
	SvcFirewall:     "firewall",
	SvcAttest:       "attest",
	SvcMobility:     "mobility",
	SvcEcho:         "echo",
	SvcWebBundle:    "webbundle",
}

// MTU is the maximum L3 datagram payload the substrate carries. ILP places
// no limit on header contents beyond the MTU (§4).
const MTU = 9000

// Errors returned by decoders.
var (
	ErrTruncated    = errors.New("wire: truncated packet")
	ErrHeaderTooBig = errors.New("wire: ILP header exceeds limit")
)

// ILPHeaderFixedSize is the size of the fixed portion of the ILP header:
// service ID (4), connection ID (8), and service-data length (2).
const ILPHeaderFixedSize = 4 + 8 + 2

// MaxServiceData bounds the service-specific portion of a single packet's
// ILP header. Services needing more spread it across packets (App. B.2).
const MaxServiceData = 4096

// ILPHeader is the interposition-layer header. Per §4, the only required
// fields are the service ID and connection ID; the rest is service-specific
// and may differ from packet to packet within a connection.
type ILPHeader struct {
	Service ServiceID
	Conn    ConnectionID
	// Data is the service-specific portion. Its length and content are
	// unconstrained up to MaxServiceData.
	Data []byte
}

// EncodedSize returns the number of bytes SerializeTo will write.
func (h *ILPHeader) EncodedSize() int {
	return ILPHeaderFixedSize + len(h.Data)
}

// SerializeTo writes the header into buf, which must have capacity for
// EncodedSize bytes, and returns the number of bytes written.
func (h *ILPHeader) SerializeTo(buf []byte) (int, error) {
	if len(h.Data) > MaxServiceData {
		return 0, ErrHeaderTooBig
	}
	n := h.EncodedSize()
	if len(buf) < n {
		return 0, fmt.Errorf("wire: buffer too small for ILP header: %d < %d", len(buf), n)
	}
	binary.BigEndian.PutUint32(buf[0:4], uint32(h.Service))
	binary.BigEndian.PutUint64(buf[4:12], uint64(h.Conn))
	binary.BigEndian.PutUint16(buf[12:14], uint16(len(h.Data)))
	copy(buf[ILPHeaderFixedSize:], h.Data)
	return n, nil
}

// Encode returns a freshly allocated encoding of the header.
func (h *ILPHeader) Encode() ([]byte, error) {
	buf := make([]byte, h.EncodedSize())
	if _, err := h.SerializeTo(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// DecodeFromBytes parses the header from data and returns the number of
// bytes consumed. The Data field aliases the input slice; callers that
// retain the header past the lifetime of the input must copy it.
func (h *ILPHeader) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < ILPHeaderFixedSize {
		return 0, ErrTruncated
	}
	h.Service = ServiceID(binary.BigEndian.Uint32(data[0:4]))
	h.Conn = ConnectionID(binary.BigEndian.Uint64(data[4:12]))
	dlen := int(binary.BigEndian.Uint16(data[12:14]))
	if dlen > MaxServiceData {
		return 0, ErrHeaderTooBig
	}
	if len(data) < ILPHeaderFixedSize+dlen {
		return 0, ErrTruncated
	}
	h.Data = data[ILPHeaderFixedSize : ILPHeaderFixedSize+dlen]
	return ILPHeaderFixedSize + dlen, nil
}

// PSPHeaderSize is the size of the PSP-style header: SPI (4) and IV (8).
const PSPHeaderSize = 4 + 8

// PSPHeader is the cleartext prefix of every ILP packet, modeled on
// Google's PSP: a Security Parameter Index identifying the key (and key
// epoch) plus a per-packet IV, so each packet is independently decryptable
// regardless of ordering or loss (§4).
type PSPHeader struct {
	SPI uint32
	IV  uint64
}

// SerializeTo writes the header into buf and returns bytes written.
func (h *PSPHeader) SerializeTo(buf []byte) (int, error) {
	if len(buf) < PSPHeaderSize {
		return 0, fmt.Errorf("wire: buffer too small for PSP header: %d", len(buf))
	}
	binary.BigEndian.PutUint32(buf[0:4], h.SPI)
	binary.BigEndian.PutUint64(buf[4:12], h.IV)
	return PSPHeaderSize, nil
}

// DecodeFromBytes parses the header and returns bytes consumed.
func (h *PSPHeader) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < PSPHeaderSize {
		return 0, ErrTruncated
	}
	h.SPI = binary.BigEndian.Uint32(data[0:4])
	h.IV = binary.BigEndian.Uint64(data[4:12])
	return PSPHeaderSize, nil
}

// DatagramHeaderSize is the L3 framing overhead: 16-byte source and
// destination addresses plus a 2-byte payload length.
const DatagramHeaderSize = 16 + 16 + 2

// Datagram is the emulated L3 packet: addressed, unreliable, unordered.
// Transport implementations move Datagrams between nodes; everything above
// (ILP, services) is transport-agnostic.
type Datagram struct {
	Src     Addr
	Dst     Addr
	Payload []byte
}

// EncodedSize returns the serialized size of the datagram.
func (d *Datagram) EncodedSize() int { return DatagramHeaderSize + len(d.Payload) }

// SerializeTo writes the datagram into buf and returns bytes written. Both
// addresses are encoded in 16-byte IPv6 form (IPv4 maps to v4-mapped-v6).
func (d *Datagram) SerializeTo(buf []byte) (int, error) {
	n := d.EncodedSize()
	if len(buf) < n {
		return 0, fmt.Errorf("wire: buffer too small for datagram: %d < %d", len(buf), n)
	}
	if len(d.Payload) > MTU {
		return 0, fmt.Errorf("wire: payload %d exceeds MTU %d", len(d.Payload), MTU)
	}
	src16 := d.Src.As16()
	dst16 := d.Dst.As16()
	copy(buf[0:16], src16[:])
	copy(buf[16:32], dst16[:])
	binary.BigEndian.PutUint16(buf[32:34], uint16(len(d.Payload)))
	copy(buf[DatagramHeaderSize:], d.Payload)
	return n, nil
}

// Encode returns a freshly allocated serialization of the datagram.
func (d *Datagram) Encode() ([]byte, error) {
	buf := make([]byte, d.EncodedSize())
	if _, err := d.SerializeTo(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// AppendEncode serializes the datagram onto dst, growing it as needed, and
// returns the extended slice. This lets transports reuse pooled encode
// buffers instead of allocating per packet.
func (d *Datagram) AppendEncode(dst []byte) ([]byte, error) {
	off := len(dst)
	n := d.EncodedSize()
	if cap(dst)-off < n {
		grown := make([]byte, off, off+n)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+n]
	if _, err := d.SerializeTo(dst[off:]); err != nil {
		return dst[:off], err
	}
	return dst, nil
}

// DecodeFromBytes parses a datagram. The Payload aliases the input.
func (d *Datagram) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < DatagramHeaderSize {
		return 0, ErrTruncated
	}
	var src16, dst16 [16]byte
	copy(src16[:], data[0:16])
	copy(dst16[:], data[16:32])
	d.Src = netip.AddrFrom16(src16).Unmap()
	d.Dst = netip.AddrFrom16(dst16).Unmap()
	plen := int(binary.BigEndian.Uint16(data[32:34]))
	if len(data) < DatagramHeaderSize+plen {
		return 0, ErrTruncated
	}
	d.Payload = data[DatagramHeaderSize : DatagramHeaderSize+plen]
	return DatagramHeaderSize + plen, nil
}

// FlowKey identifies a service connection at an SN: the decision cache is
// keyed by (L3 source, service ID, connection ID) exactly as in §4.
type FlowKey struct {
	Src     Addr
	Service ServiceID
	Conn    ConnectionID
}

// String renders the flow key for logs.
func (k FlowKey) String() string {
	return fmt.Sprintf("%s/%s/conn-%d", k.Src, k.Service, uint64(k.Conn))
}
