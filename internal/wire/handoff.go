package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// HandoffState is the serialized pipe state one SN transfers to a sibling
// during a live drain (service SvcHandoff). It carries everything the
// importing SN needs to resume the host's established pipe without a fresh
// handshake — the master secret and both key epochs — plus cache-warmth
// hints: decision-cache rules that were forwarding toward the host, so the
// new SN starts warm instead of taking a miss per flow.
//
// The state travels only over the sealed inter-SN pipe; the codec itself
// provides no confidentiality.
//
// Wire layout (big-endian):
//
//	version(1) flags(1) host(16) identity(32) master(32)
//	baseSPI(4) txEpoch(4) rxEpoch(4)
//	hintCount(2) then hintCount * { src(16) service(4) conn(8) }
type HandoffState struct {
	// Host is the pipe peer whose state is moving.
	Host Addr
	// Identity is the host's ed25519 public key, pinned at handshake time.
	Identity [32]byte
	// Master is the pipe's master secret from the original handshake.
	Master [32]byte
	// Initiator reports whether the exporting SN was the handshake
	// initiator; key-derivation directions depend on it.
	Initiator bool
	// BaseSPI is the pipe's base Security Parameter Index (low byte zero).
	BaseSPI uint32
	// TxEpoch and RxEpoch are the exporting SN's current key epochs. The
	// importer resumes TX at TxEpoch+1 (fresh IV space, no reuse) and RX at
	// RxEpoch (the host may still be sending on it).
	TxEpoch uint32
	RxEpoch uint32
	// Warmth lists flow keys whose cached decisions forwarded to Host; the
	// importer pre-installs forward-to-host rules for them.
	Warmth []FlowKey
}

const (
	handoffVersion = 1

	handoffFlagInitiator = 0x01

	handoffFixedSize = 1 + 1 + 16 + 32 + 32 + 4 + 4 + 4 + 2
	handoffHintSize  = 16 + 4 + 8

	// MaxHandoffWarmth caps the warmth hints carried per handoff so the
	// state always fits one datagram; anything beyond warms up via misses.
	MaxHandoffWarmth = 64
)

// Errors specific to the handoff codec.
var (
	ErrHandoffVersion  = errors.New("wire: unsupported handoff version")
	ErrHandoffTooLarge = errors.New("wire: too many handoff warmth hints")
)

// EncodedSize returns the number of bytes SerializeTo will write.
func (h *HandoffState) EncodedSize() int {
	return handoffFixedSize + len(h.Warmth)*handoffHintSize
}

// SerializeTo writes the state into buf and returns bytes written.
func (h *HandoffState) SerializeTo(buf []byte) (int, error) {
	if len(h.Warmth) > MaxHandoffWarmth {
		return 0, ErrHandoffTooLarge
	}
	n := h.EncodedSize()
	if len(buf) < n {
		return 0, fmt.Errorf("wire: buffer too small for handoff state: %d < %d", len(buf), n)
	}
	buf[0] = handoffVersion
	var flags byte
	if h.Initiator {
		flags |= handoffFlagInitiator
	}
	buf[1] = flags
	host16 := h.Host.As16()
	copy(buf[2:18], host16[:])
	copy(buf[18:50], h.Identity[:])
	copy(buf[50:82], h.Master[:])
	binary.BigEndian.PutUint32(buf[82:86], h.BaseSPI)
	binary.BigEndian.PutUint32(buf[86:90], h.TxEpoch)
	binary.BigEndian.PutUint32(buf[90:94], h.RxEpoch)
	binary.BigEndian.PutUint16(buf[94:96], uint16(len(h.Warmth)))
	off := handoffFixedSize
	for _, k := range h.Warmth {
		src16 := k.Src.As16()
		copy(buf[off:off+16], src16[:])
		binary.BigEndian.PutUint32(buf[off+16:off+20], uint32(k.Service))
		binary.BigEndian.PutUint64(buf[off+20:off+28], uint64(k.Conn))
		off += handoffHintSize
	}
	return n, nil
}

// Encode returns a freshly allocated serialization of the state.
func (h *HandoffState) Encode() ([]byte, error) {
	buf := make([]byte, h.EncodedSize())
	if _, err := h.SerializeTo(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// DecodeFromBytes parses the state and returns bytes consumed. All fields
// are copied; nothing aliases the input.
func (h *HandoffState) DecodeFromBytes(data []byte) (int, error) {
	if len(data) < handoffFixedSize {
		return 0, ErrTruncated
	}
	if data[0] != handoffVersion {
		return 0, ErrHandoffVersion
	}
	h.Initiator = data[1]&handoffFlagInitiator != 0
	var host16 [16]byte
	copy(host16[:], data[2:18])
	h.Host = netip.AddrFrom16(host16).Unmap()
	copy(h.Identity[:], data[18:50])
	copy(h.Master[:], data[50:82])
	h.BaseSPI = binary.BigEndian.Uint32(data[82:86])
	h.TxEpoch = binary.BigEndian.Uint32(data[86:90])
	h.RxEpoch = binary.BigEndian.Uint32(data[90:94])
	count := int(binary.BigEndian.Uint16(data[94:96]))
	if count > MaxHandoffWarmth {
		return 0, ErrHandoffTooLarge
	}
	n := handoffFixedSize + count*handoffHintSize
	if len(data) < n {
		return 0, ErrTruncated
	}
	if count > 0 {
		h.Warmth = make([]FlowKey, count)
		off := handoffFixedSize
		for i := range h.Warmth {
			var src16 [16]byte
			copy(src16[:], data[off:off+16])
			h.Warmth[i] = FlowKey{
				Src:     netip.AddrFrom16(src16).Unmap(),
				Service: ServiceID(binary.BigEndian.Uint32(data[off+16 : off+20])),
				Conn:    ConnectionID(binary.BigEndian.Uint64(data[off+20 : off+28])),
			}
			off += handoffHintSize
		}
	} else {
		h.Warmth = nil
	}
	return n, nil
}

// PipeMoveSize is the payload size of a SvcPipeMove notice: the 16-byte
// successor SN address.
const PipeMoveSize = 16

// EncodePipeMove serializes a drain notice naming the successor SN.
func EncodePipeMove(successor Addr) []byte {
	buf := make([]byte, PipeMoveSize)
	a16 := successor.As16()
	copy(buf, a16[:])
	return buf
}

// DecodePipeMove parses a SvcPipeMove payload.
func DecodePipeMove(data []byte) (Addr, error) {
	if len(data) < PipeMoveSize {
		return Addr{}, ErrTruncated
	}
	var a16 [16]byte
	copy(a16[:], data[:16])
	return netip.AddrFrom16(a16).Unmap(), nil
}
