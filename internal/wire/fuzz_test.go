package wire

import (
	"bytes"
	"testing"
)

func FuzzILPHeaderDecode(f *testing.F) {
	// Seed corpus: minimal header, header with service data, truncated
	// fixed part, and an oversized declared data length.
	h := ILPHeader{Service: SvcEcho, Conn: 42}
	if enc, err := h.Encode(); err == nil {
		f.Add(enc)
	}
	h2 := ILPHeader{Service: SvcControl, Conn: 7, Data: []byte("service-data")}
	if enc, err := h2.Encode(); err == nil {
		f.Add(enc)
	}
	f.Add([]byte{0, 0, 0, 1, 0, 0})
	f.Add([]byte{0, 0, 1, 0x14, 0, 0, 0, 0, 0, 0, 0, 1, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		var h ILPHeader
		n, err := h.DecodeFromBytes(data)
		if err != nil {
			return
		}
		if n < ILPHeaderFixedSize || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		if len(h.Data) > MaxServiceData {
			t.Fatalf("decoded Data length %d exceeds MaxServiceData", len(h.Data))
		}
		enc, err := h.Encode()
		if err != nil {
			t.Fatalf("re-encode of decoded header failed: %v", err)
		}
		var h2 ILPHeader
		if _, err := h2.DecodeFromBytes(enc); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if h2.Service != h.Service || h2.Conn != h.Conn || !bytes.Equal(h2.Data, h.Data) {
			t.Fatalf("round trip mismatch: %+v vs %+v", h, h2)
		}
	})
}

func FuzzDatagramDecode(f *testing.F) {
	dg := Datagram{Src: MustAddr("fd00::1"), Dst: MustAddr("fd00::2"), Payload: []byte("hello")}
	if enc, err := dg.Encode(); err == nil {
		f.Add(enc)
	}
	empty := Datagram{Src: MustAddr("::1"), Dst: MustAddr("192.0.2.1")}
	if enc, err := empty.Encode(); err == nil {
		f.Add(enc)
	}
	f.Add(make([]byte, DatagramHeaderSize-1))

	f.Fuzz(func(t *testing.T, data []byte) {
		var d Datagram
		n, err := d.DecodeFromBytes(data)
		if err != nil {
			return
		}
		if n < DatagramHeaderSize || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		if len(d.Payload) > MTU {
			// Decode has no MTU check (the substrate enforces it on send),
			// but the declared length can never exceed what a uint16 holds.
			if len(d.Payload) > 0xFFFF {
				t.Fatalf("payload length %d exceeds length field range", len(d.Payload))
			}
			return
		}
		enc, err := d.Encode()
		if err != nil {
			t.Fatalf("re-encode of decoded datagram failed: %v", err)
		}
		var d2 Datagram
		if _, err := d2.DecodeFromBytes(enc); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if d2.Src != d.Src || d2.Dst != d.Dst || !bytes.Equal(d2.Payload, d.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", d, d2)
		}
	})
}

func FuzzPSPHeaderDecode(f *testing.F) {
	h := PSPHeader{SPI: 0xAABBCC00, IV: 7}
	buf := make([]byte, PSPHeaderSize)
	if _, err := h.SerializeTo(buf); err == nil {
		f.Add(buf)
	}
	f.Add([]byte{1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		var h PSPHeader
		n, err := h.DecodeFromBytes(data)
		if err != nil {
			return
		}
		if n != PSPHeaderSize {
			t.Fatalf("consumed %d bytes, want %d", n, PSPHeaderSize)
		}
		out := make([]byte, PSPHeaderSize)
		if _, err := h.SerializeTo(out); err != nil {
			t.Fatalf("re-serialize failed: %v", err)
		}
		if !bytes.Equal(out, data[:PSPHeaderSize]) {
			t.Fatalf("round trip mismatch: %x vs %x", out, data[:PSPHeaderSize])
		}
	})
}
