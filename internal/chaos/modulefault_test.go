package chaos

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"interedge/internal/handshake"
	"interedge/internal/netsim"
	"interedge/internal/pipe"
	"interedge/internal/services/echo"
	"interedge/internal/sn"
	"interedge/internal/sn/cache"
	"interedge/internal/wire"
)

// Misbehaving-module fault suite: one SN hosts a healthy echo module next
// to a panic storm, an IPC crash loop, a hang, and an error storm — all at
// once, with substrate faults live on the access link. The containment
// contract under test:
//
//   - the SN process survives every module fault class;
//   - the healthy module and the fast path keep forwarding throughout;
//   - each faulty module's breaker trips, and the ones that heal recover
//     through a half-open probe;
//   - packets shed by the error storm pass through to its degraded-forward
//     fallback instead of vanishing;
//   - teardown leaks no goroutines and heap growth stays bounded.

// panicStormMod panics on every packet (chan transport: recovered in
// process).
type panicStormMod struct{}

func (panicStormMod) Service() wire.ServiceID { return wire.SvcNull }
func (panicStormMod) Name() string            { return "panic-storm" }
func (panicStormMod) Version() string         { return "1" }
func (panicStormMod) HandlePacket(sn.Env, *sn.Packet) (sn.Decision, error) {
	panic("panic storm")
}

// crashLoopMod panics on every packet; registered over IPC, each panic
// kills the module server connection, so the module crash-loops through
// redials.
type crashLoopMod struct{}

func (crashLoopMod) Service() wire.ServiceID { return wire.SvcQoS }
func (crashLoopMod) Name() string            { return "crash-loop" }
func (crashLoopMod) Version() string         { return "1" }
func (crashLoopMod) HandlePacket(sn.Env, *sn.Packet) (sn.Decision, error) {
	panic("crash loop")
}

// hangMod blocks every invocation until healed, then echoes.
type hangMod struct {
	healed  atomic.Bool
	release chan struct{}
}

func newHangMod() *hangMod { return &hangMod{release: make(chan struct{})} }

func (m *hangMod) Service() wire.ServiceID { return wire.SvcVPN }
func (m *hangMod) Name() string            { return "hang" }
func (m *hangMod) Version() string         { return "1" }
func (m *hangMod) HandlePacket(_ sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if !m.healed.Load() {
		<-m.release
	}
	return sn.Decision{Forwards: []sn.Forward{{Dst: pkt.Src}}}, nil
}
func (m *hangMod) heal() {
	if m.healed.CompareAndSwap(false, true) {
		close(m.release)
	}
}

// errorStormMod fails every packet until healed, then echoes.
type errorStormMod struct{ healed atomic.Bool }

func (m *errorStormMod) Service() wire.ServiceID { return wire.SvcMixnet }
func (m *errorStormMod) Name() string            { return "error-storm" }
func (m *errorStormMod) Version() string         { return "1" }
func (m *errorStormMod) HandlePacket(_ sn.Env, pkt *sn.Packet) (sn.Decision, error) {
	if !m.healed.Load() {
		return sn.Decision{}, fmt.Errorf("error storm")
	}
	return sn.Decision{Forwards: []sn.Forward{{Dst: pkt.Src}}}, nil
}

// svcHealth fetches one service's containment snapshot.
func svcHealth(t *testing.T, node *sn.SN, svc wire.ServiceID) sn.ModuleHealth {
	t.Helper()
	for _, h := range node.ModuleHealth() {
		if h.Service == svc {
			return h
		}
	}
	t.Fatalf("no health entry for %v", svc)
	return sn.ModuleHealth{}
}

func TestModuleFaultContainmentChaos(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runModuleFaults(t, seed) })
	}
}

func runModuleFaults(t *testing.T, seed int64) {
	baseGoroutines := runtime.NumGoroutine()
	var baseMem runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&baseMem)

	net := netsim.NewNetwork(netsim.WithSeed(seed))

	// The SN under test.
	tr, err := net.Attach(wire.MustAddr("fd00::5"))
	if err != nil {
		t.Fatal(err)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	node, err := sn.New(sn.Config{
		Transport:        tr,
		Identity:         id,
		HandshakeTimeout: 10 * time.Millisecond,
		HandshakeRetries: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	// On failure, dump the node's telemetry registry — the per-module
	// sn_module_* instruments show which containment mechanism misfired.
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("telemetry fd00::5:\n%s", node.Telemetry().Snapshot())
		}
	})

	// A client host and a fallback next hop for degraded forwarding. Both
	// tally CRC-validated payloads by sequence number.
	type tally struct {
		mu        sync.Mutex
		delivered map[uint32]int
		bad       int
	}
	newTally := func() *tally { return &tally{delivered: make(map[uint32]int)} }
	record := func(tl *tally) pipe.PacketHandler {
		return func(_ pipe.Sender, _ wire.Addr, _ wire.ILPHeader, _, payload []byte) {
			seq, ok := checkPayload(payload)
			tl.mu.Lock()
			if !ok {
				tl.bad++
			} else {
				tl.delivered[seq]++
			}
			tl.mu.Unlock()
		}
	}
	clTally, fbTally := newTally(), newTally()
	client := newManager(t, net, "fd00::1", record(clTally), nil)
	fallback := newManager(t, net, "fd00::7", record(fbTally), nil)

	hang := newHangMod()
	errStorm := &errorStormMod{}
	healthy := echo.New()
	registrations := []struct {
		mod  sn.Module
		opts []sn.ModuleOption
	}{
		{healthy, nil},
		{panicStormMod{}, []sn.ModuleOption{
			sn.WithBreaker(4, 100*time.Millisecond)}},
		{crashLoopMod{}, []sn.ModuleOption{
			sn.WithTransport(sn.TransportIPC),
			sn.WithRestartBackoff(time.Millisecond, 8*time.Millisecond),
			sn.WithBreaker(3, 60*time.Millisecond)}},
		{hang, []sn.ModuleOption{
			sn.WithDeadline(15 * time.Millisecond),
			sn.WithBreaker(3, 150*time.Millisecond)}},
		{errStorm, []sn.ModuleOption{
			sn.WithBreaker(3, 150*time.Millisecond),
			sn.WithDegradedForward(fallback.LocalAddr())}},
	}
	for _, r := range registrations {
		if err := node.Register(r.mod, r.opts...); err != nil {
			t.Fatal(err)
		}
	}

	if err := client.Connect(node.Addr()); err != nil {
		t.Fatal(err)
	}
	// Fast-path rule: conn 999 forwards straight back to the client from
	// the decision cache, module-free.
	node.Cache().Add(
		wire.FlowKey{Src: client.LocalAddr(), Service: wire.SvcEcho, Conn: 999},
		cache.Action{Forward: []wire.Addr{client.LocalAddr()}})

	// Substrate chaos on the access link, switched on after the handshake
	// (handshake-under-faults is the pipe suite's job).
	net.SetFaultsBoth(client.LocalAddr(), node.Addr(), netsim.FaultProfile{
		ReorderRate:     0.1,
		ReorderDelayMin: 500 * time.Microsecond,
		ReorderDelayMax: 2 * time.Millisecond,
		DuplicateRate:   0.1,
		CorruptRate:     0.05,
		JitterMax:       time.Millisecond,
	})

	send := func(svc wire.ServiceID, conn wire.ConnectionID, seq uint32) {
		// Sends may race substrate faults; losses are the test's business,
		// send errors are not expected.
		if err := client.Send(node.Addr(), &wire.ILPHeader{Service: svc, Conn: conn}, mkPayload(seq)); err != nil {
			t.Errorf("send %v: %v", svc, err)
		}
	}

	// Phase 1 — every fault class fires at once, interleaved with healthy
	// and fast-path traffic. Payload tags name the originating stream.
	const sends = 120
	for i := uint32(0); i < sends; i++ {
		send(wire.SvcEcho, 1, 0xE<<24|i)
		send(wire.SvcEcho, 999, 0xF<<24|i)
		send(wire.SvcNull, 1, 0xA<<24|i)
		send(wire.SvcQoS, 1, 0xB<<24|i)
		send(wire.SvcVPN, 1, 0xC<<24|i)
		send(wire.SvcMixnet, 1, 0xD<<24|i)
		time.Sleep(500 * time.Microsecond)
	}

	countTag := func(tl *tally, tag uint32) int {
		tl.mu.Lock()
		defer tl.mu.Unlock()
		n := 0
		for seq := range tl.delivered {
			if seq>>24 == tag {
				n++
			}
		}
		return n
	}

	// The SN survived and the healthy module plus the fast path kept
	// forwarding through the storm (corruption legitimately drops a few).
	waitCond(t, 10*time.Second, "healthy echo deliveries", func() bool {
		return countTag(clTally, 0xE) >= sends*6/10
	})
	waitCond(t, 10*time.Second, "fast-path deliveries", func() bool {
		return countTag(clTally, 0xF) >= sends*6/10
	})
	if c := node.Counters(); c.FastPathHits == 0 {
		t.Fatal("fast path never hit")
	}

	// Each fault class was contained and tripped its breaker.
	waitCond(t, 10*time.Second, "panic storm contained", func() bool {
		h := svcHealth(t, node, wire.SvcNull)
		return h.Panics >= 4 && h.BreakerTrips >= 1
	})
	waitCond(t, 10*time.Second, "hang timed out and tripped", func() bool {
		h := svcHealth(t, node, wire.SvcVPN)
		return h.Timeouts >= 3 && h.BreakerTrips >= 1
	})
	waitCond(t, 10*time.Second, "error storm tripped and shed to fallback", func() bool {
		h := svcHealth(t, node, wire.SvcMixnet)
		return h.BreakerTrips >= 1 && h.Shed >= 1 && countTag(fbTally, 0xD) >= 1
	})
	// The crash loop keeps crashing through restarts: half-open probes
	// reach a freshly redialed server, crash it again, and re-trip.
	waitCond(t, 10*time.Second, "IPC crash loop restarts", func() bool {
		send(wire.SvcQoS, 1, 0xB<<24|0x00FFFF00)
		h := svcHealth(t, node, wire.SvcQoS)
		return h.Panics >= 2 && h.Restarts >= 2 && h.BreakerTrips >= 2
	})

	// Phase 2 — heal the hang and the error storm; their breakers must
	// recover through a half-open probe and traffic must flow again.
	hang.heal()
	errStorm.healed.Store(true)
	var probe atomic.Uint32
	waitCond(t, 10*time.Second, "hang module breaker recovery", func() bool {
		send(wire.SvcVPN, 1, 0xC<<24|0x00800000|probe.Add(1))
		h := svcHealth(t, node, wire.SvcVPN)
		return h.BreakerRecoveries >= 1 && h.Handled >= 1
	})
	waitCond(t, 10*time.Second, "error storm breaker recovery", func() bool {
		send(wire.SvcMixnet, 1, 0xD<<24|0x00800000|probe.Add(1))
		h := svcHealth(t, node, wire.SvcMixnet)
		return h.BreakerRecoveries >= 1 && h.Handled >= 1
	})
	// Keep probing while waiting: substrate faults may corrupt any single
	// response, so one handled packet does not guarantee one delivery.
	waitCond(t, 10*time.Second, "post-recovery hang-module delivery", func() bool {
		send(wire.SvcVPN, 1, 0xC<<24|0x00800000|probe.Add(1))
		return countTag(clTally, 0xC) >= 1
	})
	waitCond(t, 10*time.Second, "post-recovery error-module delivery", func() bool {
		send(wire.SvcMixnet, 1, 0xD<<24|0x00800000|probe.Add(1))
		return countTag(clTally, 0xD) >= 1
	})

	// Integrity held throughout: no corrupted payload reached a handler,
	// no sequence number was delivered twice.
	for name, tl := range map[string]*tally{"client": clTally, "fallback": fbTally} {
		tl.mu.Lock()
		if tl.bad != 0 {
			t.Errorf("%s: %d corrupted payloads reached the handler", name, tl.bad)
		}
		for seq, n := range tl.delivered {
			if n != 1 {
				t.Errorf("%s: seq %#x delivered %d times", name, seq, n)
			}
		}
		tl.mu.Unlock()
	}
	if c := node.Counters(); c.ModuleErrors == 0 {
		t.Error("no module errors recorded despite the fault storm")
	}

	// Teardown: the whole storm — abandoned hung invocations, crash-loop
	// redialers, shed queues — must drain within the leak bounds.
	node.Close()
	client.Close()
	fallback.Close()
	waitCond(t, 5*time.Second, "goroutines drained after Close", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseGoroutines+10
	})
	var endMem runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&endMem)
	const heapSlack = 64 << 20
	if endMem.HeapAlloc > baseMem.HeapAlloc+heapSlack {
		t.Errorf("heap grew from %d to %d bytes across the fault storm", baseMem.HeapAlloc, endMem.HeapAlloc)
	}
}
