package chaos

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"interedge/internal/host"
	"interedge/internal/lab"
	"interedge/internal/netsim"
	"interedge/internal/services/echo"
	"interedge/internal/sn"
	"interedge/internal/wire"
)

// TestSoakMultiEdomainChaos drives a full two-edomain topology (2 SNs
// each, meshed, one host per edomain) through every fault class at once:
// steady-state reorder/duplicate/corrupt/jitter on ALL links, plus a
// scripted schedule that flaps the inter-edomain gateway partition past
// the dead-peer threshold, fires a loss burst on a host's access link, and
// progressively degrades an intra-edomain link. Invariants:
//
//   - no corrupted payload ever reaches a host connection (CRC-checked);
//   - no echo reply is delivered twice for one request;
//   - gateway pipes killed by the flap re-establish and the topology
//     re-converges (fresh round trips succeed on every host);
//   - teardown leaks no goroutines and heap growth stays bounded.
func TestSoakMultiEdomainChaos(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) { runSoak(t, seed) })
	}
}

func runSoak(t *testing.T, seed int64) {
	baseGoroutines := runtime.NumGoroutine()
	var baseMem runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&baseMem)

	net := netsim.NewNetwork(netsim.WithSeed(seed))
	topo := lab.New(lab.WithNetwork(net), lab.WithSNConfig(func(c *sn.Config) {
		c.KeepaliveInterval = 25 * time.Millisecond
		c.HandshakeTimeout = 15 * time.Millisecond
		c.HandshakeRetries = 10
	}))
	defer topo.Close()

	withEcho := func(node *sn.SN, ed *lab.Edomain) error { return node.Register(echo.New()) }
	edA, err := topo.AddEdomain("ed-a", 2, withEcho)
	if err != nil {
		t.Fatal(err)
	}
	edB, err := topo.AddEdomain("ed-b", 2, withEcho)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Mesh(); err != nil {
		t.Fatal(err)
	}
	hA, err := topo.NewHost(edA, 0)
	if err != nil {
		t.Fatal(err)
	}
	hB, err := topo.NewHost(edB, 1)
	if err != nil {
		t.Fatal(err)
	}
	// On failure, dump every node's telemetry registry: the full cross-layer
	// counter and histogram state is usually enough to localize which layer
	// ate the packets without re-running under a debugger.
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		for _, ed := range []*lab.Edomain{edA, edB} {
			for i, node := range ed.SNs {
				t.Logf("telemetry %s/sn%d:\n%s", ed.ID, i, node.Telemetry().Snapshot())
			}
		}
	})

	// Steady-state chaos on every link, switched on only after setup so the
	// build phase is fast; the handshake-under-faults path is exercised by
	// the scripted events below and by the pipe-level tests.
	net.SetDefaultFaults(netsim.FaultProfile{
		ReorderRate:     0.1,
		ReorderDelayMin: 500 * time.Microsecond,
		ReorderDelayMax: 2 * time.Millisecond,
		DuplicateRate:   0.1,
		CorruptRate:     0.05,
		JitterMax:       time.Millisecond,
	})

	// Scripted faults: gateway flap (each 200ms sever outlasts the 100ms
	// DeadAfter), a heavy loss burst on host A's access link, and a
	// four-step degradation of edomain B's intra-SN link, later restored.
	gwA, gwB := edA.Gateway().Addr(), edB.Gateway().Addr()
	events := netsim.FlapPartition(gwA, gwB, 100*time.Millisecond, 200*time.Millisecond, 2)
	events = append(events, netsim.LossBurst(
		hA.Addr(), edA.SNs[0].Addr(), netsim.LinkProfile{}, 0.7,
		150*time.Millisecond, 200*time.Millisecond)...)
	events = append(events, netsim.Degrade(
		edB.SNs[0].Addr(), edB.SNs[1].Addr(),
		netsim.LinkProfile{}, netsim.LinkProfile{Latency: 2 * time.Millisecond, LossRate: 0.05},
		200*time.Millisecond, 100*time.Millisecond, 4)...)
	events = append(events, netsim.FaultEvent{
		At: 700 * time.Millisecond,
		Do: func(n *netsim.Network) {
			n.SetLinkBoth(edB.SNs[0].Addr(), edB.SNs[1].Addr(), netsim.LinkProfile{})
		},
	})
	done, cancel := net.Schedule(events)
	defer cancel()

	// Traffic: each host echoes CRC-stamped payloads through its first-hop
	// SN for the whole fault window. Losses are expected; corruption and
	// double delivery are not.
	type result struct {
		delivered map[uint32]int
		bad       int
		sent      int
	}
	drive := func(h *host.Host, tag uint32) result {
		res := result{delivered: make(map[uint32]int)}
		conn, err := h.NewConn(wire.SvcEcho)
		if err != nil {
			t.Errorf("NewConn: %v", err)
			return res
		}
		defer conn.Close()
		var wg sync.WaitGroup
		stopRx := make(chan struct{})
		var mu sync.Mutex
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case msg, ok := <-conn.Receive():
					if !ok {
						return
					}
					seq, ok := checkPayload(msg.Payload)
					mu.Lock()
					if !ok || seq>>24 != tag {
						res.bad++
					} else {
						res.delivered[seq]++
					}
					mu.Unlock()
				case <-stopRx:
					return
				}
			}
		}()
		deadline := time.Now().Add(1200 * time.Millisecond)
		for i := 0; time.Now().Before(deadline); i++ {
			seq := tag<<24 | uint32(i)
			if err := conn.Send(nil, mkPayload(seq)); err == nil {
				res.sent++
			}
			time.Sleep(2 * time.Millisecond)
		}
		// Let in-flight replies land before counting.
		time.Sleep(150 * time.Millisecond)
		close(stopRx)
		wg.Wait()
		return res
	}
	var resA, resB result
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); resA = drive(hA, 0xA) }()
	go func() { defer wg.Done(); resB = drive(hB, 0xB) }()
	wg.Wait()
	<-done

	for name, res := range map[string]result{"hostA": resA, "hostB": resB} {
		if res.bad != 0 {
			t.Errorf("%s: %d corrupted or misdirected payloads reached the connection", name, res.bad)
		}
		for seq, n := range res.delivered {
			if n != 1 {
				t.Errorf("%s: seq %#x delivered %d times", name, seq, n)
			}
		}
		if len(res.delivered) == 0 {
			t.Errorf("%s: no echo round trip completed under chaos (sent %d)", name, res.sent)
		}
	}

	// The gateway flap must have bitten (each sever outlasts DeadAfter) and
	// the mesh must re-converge once the schedule ends.
	var peersLost uint64
	for _, ed := range []*lab.Edomain{edA, edB} {
		for _, node := range ed.SNs {
			peersLost += node.Counters().PeersLost
		}
	}
	if peersLost == 0 {
		t.Error("no SN ever lost a peer; the gateway flap did not bite")
	}
	waitCond(t, 5*time.Second, "gateway mesh re-established", func() bool {
		return edA.Gateway().Pipes().HasPeer(gwB) && edB.Gateway().Pipes().HasPeer(gwA)
	})
	for name, h := range map[string]*host.Host{"hostA": hA, "hostB": hB} {
		conn, err := h.NewConn(wire.SvcEcho)
		if err != nil {
			t.Fatalf("%s post-chaos NewConn: %v", name, err)
		}
		seq := uint32(0xC<<24 | 1)
		okCh := make(chan struct{}, 1)
		go func() {
			for msg := range conn.Receive() {
				if got, ok := checkPayload(msg.Payload); ok && got == seq {
					okCh <- struct{}{}
					return
				}
			}
		}()
		waitCond(t, 5*time.Second, name+" post-chaos round trip", func() bool {
			_ = conn.Send(nil, mkPayload(seq))
			select {
			case <-okCh:
				return true
			case <-time.After(20 * time.Millisecond):
				return false
			}
		})
		conn.Close()
	}

	// Teardown must not leak: stop the schedule, close everything, then
	// bound goroutines and heap against the pre-topology baseline.
	cancel()
	topo.Close()
	waitCond(t, 5*time.Second, "goroutines drained after Close", func() bool {
		runtime.GC() // finalize timer goroutines promptly
		return runtime.NumGoroutine() <= baseGoroutines+10
	})
	var endMem runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&endMem)
	const heapSlack = 64 << 20
	if endMem.HeapAlloc > baseMem.HeapAlloc+heapSlack {
		t.Errorf("heap grew from %d to %d bytes across the soak", baseMem.HeapAlloc, endMem.HeapAlloc)
	}
}
