// Package chaos is the fault-injection soak suite for the full InterEdge
// stack. It drives pipes, SNs, and multi-edomain lab topologies through
// the netsim fault classes — seeded reordering, duplication, single-bit
// corruption, latency jitter, loss bursts, flapping partitions, and
// progressive link degradation — and asserts the system's liveness and
// integrity invariants:
//
//   - no corrupted payload ever reaches a pipe handler or service module
//     (PSP authentication covers header and payload);
//   - no datagram is ever double-delivered, even across a key rotation
//     (per-epoch replay windows);
//   - per-source packet order observed by handlers matches arrival order
//     (sharded rx workers preserve it within a shard);
//   - pipes torn down by dead-peer detection re-establish automatically
//     once connectivity returns, with fresh key epochs;
//   - the topology re-converges after scripted fault schedules end, with
//     no goroutine leaks and bounded memory.
//
// Every run is reproducible: fault randomness comes from netsim's seeded
// RNG (the suite pins a fixed seed set) and backoff jitter derives from
// per-node address hashes.
package chaos
