package chaos

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
	"testing"
	"time"

	"interedge/internal/handshake"
	"interedge/internal/netsim"
	"interedge/internal/pipe"
	"interedge/internal/wire"
)

// payloadLen is the size of every chaos payload: a 4-byte sequence number,
// sequence-derived filler, and a trailing CRC32 so any corruption that
// slipped past PSP authentication would be caught at the receiver.
const payloadLen = 32

func mkPayload(seq uint32) []byte {
	p := make([]byte, payloadLen)
	binary.BigEndian.PutUint32(p, seq)
	for i := 4; i < payloadLen-4; i++ {
		p[i] = byte(seq>>(uint(i%4)*8)) ^ byte(i)
	}
	binary.BigEndian.PutUint32(p[payloadLen-4:], crc32.ChecksumIEEE(p[:payloadLen-4]))
	return p
}

// checkPayload validates the CRC and returns the sequence number.
func checkPayload(p []byte) (uint32, bool) {
	if len(p) != payloadLen {
		return 0, false
	}
	if crc32.ChecksumIEEE(p[:payloadLen-4]) != binary.BigEndian.Uint32(p[payloadLen-4:]) {
		return 0, false
	}
	return binary.BigEndian.Uint32(p), true
}

// newManager attaches a pipe manager at addr with test-friendly handshake
// timing (fast retries so chaos-induced handshake losses resolve quickly).
func newManager(t *testing.T, net *netsim.Network, addr string, handler pipe.PacketHandler, edit func(*pipe.Config)) *pipe.Manager {
	t.Helper()
	tr, err := net.Attach(wire.MustAddr(addr))
	if err != nil {
		t.Fatal(err)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipe.Config{
		Transport:        tr,
		Identity:         id,
		Handler:          handler,
		HandshakeTimeout: 10 * time.Millisecond,
		HandshakeRetries: 20,
	}
	if edit != nil {
		edit(&cfg)
	}
	m, err := pipe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// waitQuiesce polls counter until it stops changing for settle (or deadline
// expires) and returns the final value. Chaos delivery is asynchronous —
// duplicates and reordered stragglers arrive on their own timers — so tests
// wait for the count to go quiet rather than for an exact total.
func waitQuiesce(t *testing.T, deadline time.Duration, settle time.Duration, counter func() int) int {
	t.Helper()
	last, lastChange := counter(), time.Now()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		time.Sleep(10 * time.Millisecond)
		if n := counter(); n != last {
			last, lastChange = n, time.Now()
			continue
		}
		if time.Since(lastChange) >= settle {
			break
		}
	}
	return last
}

func waitCond(t *testing.T, deadline time.Duration, what string, cond func() bool) {
	t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPipeIntegrityUnderCombinedFaults drives one pipe through every fault
// class at once — reordering, duplication, corruption, jitter — across a
// fixed seed set and asserts the two integrity invariants: no corrupted
// payload ever reaches the handler (PSP authentication drops it first) and
// no sequence number is ever delivered twice (replay window).
func TestPipeIntegrityUnderCombinedFaults(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			net := netsim.NewNetwork(netsim.WithSeed(seed))
			var mu sync.Mutex
			got := make(map[uint32]int)
			bad := 0
			handler := func(_ pipe.Sender, src wire.Addr, hdr wire.ILPHeader, _, payload []byte) {
				seq, ok := checkPayload(payload)
				mu.Lock()
				if !ok {
					bad++
				} else {
					got[seq]++
				}
				mu.Unlock()
			}
			a := newManager(t, net, "fd00::a", nil, nil)
			b := newManager(t, net, "fd00::b", handler, nil)
			net.SetFaultsBoth(a.LocalAddr(), b.LocalAddr(), netsim.FaultProfile{
				ReorderRate:     0.25,
				ReorderDelayMin: time.Millisecond,
				ReorderDelayMax: 3 * time.Millisecond,
				DuplicateRate:   0.2,
				CorruptRate:     0.15,
				JitterMax:       time.Millisecond,
			})
			// The handshake itself runs under faults: corrupted or reordered
			// msg1/msg2 are absorbed by the retransmission loop.
			if err := a.Connect(b.LocalAddr()); err != nil {
				t.Fatalf("connect under faults: %v", err)
			}

			const sends = 400
			hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 1}
			for i := 0; i < sends; i++ {
				if err := a.Send(b.LocalAddr(), &hdr, mkPayload(uint32(i))); err != nil {
					t.Fatal(err)
				}
			}
			delivered := waitQuiesce(t, 5*time.Second, 300*time.Millisecond, func() int {
				mu.Lock()
				defer mu.Unlock()
				return len(got)
			})

			mu.Lock()
			defer mu.Unlock()
			if bad != 0 {
				t.Fatalf("%d corrupted payloads reached the handler", bad)
			}
			for seq, n := range got {
				if n != 1 {
					t.Fatalf("seq %d delivered %d times", seq, n)
				}
			}
			// Corrupted copies are dropped by PSP, so some sequence numbers
			// legitimately never arrive — but most must.
			if delivered < sends*6/10 {
				t.Fatalf("only %d/%d payloads delivered", delivered, sends)
			}
			// The run proves nothing unless every fault class actually fired.
			st := net.Snapshot()
			if st.Reordered == 0 || st.Duplicated == 0 || st.Corrupted == 0 {
				t.Fatalf("fault classes did not all fire: %+v", st)
			}
		})
	}
}

// recordingTransport wraps a netsim transport and records, per FrameILP
// datagram, the cleartext application sequence number in substrate arrival
// order. The pipe layer promises handlers see one source's packets in
// arrival order (sharded rx workers); this records the ground truth to
// compare against.
type recordingTransport struct {
	netsim.Transport
	mu   sync.Mutex
	seqs []uint32
	out  chan wire.Datagram
}

func newRecordingTransport(inner netsim.Transport) *recordingTransport {
	r := &recordingTransport{Transport: inner, out: make(chan wire.Datagram, 4096)}
	go func() {
		defer close(r.out)
		for dg := range inner.Receive() {
			if seq, ok := ilpAppSeq(dg.Payload); ok {
				r.mu.Lock()
				r.seqs = append(r.seqs, seq)
				r.mu.Unlock()
			}
			r.out <- dg
		}
	}()
	return r
}

func (r *recordingTransport) Receive() <-chan wire.Datagram { return r.out }

func (r *recordingTransport) arrivals() []uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]uint32(nil), r.seqs...)
}

// ilpAppSeq extracts the test payload's sequence number from a sealed
// FrameILP datagram without any keys: the PSP layout is frame byte, 12-byte
// PSP header, 2-byte ciphertext length, the encrypted ILP header (+tag),
// then the cleartext-but-authenticated payload, whose first 4 bytes are the
// sequence counter.
func ilpAppSeq(p []byte) (uint32, bool) {
	if len(p) < 1+wire.PSPHeaderSize+2 || wire.FrameType(p[0]) != wire.FrameILP {
		return 0, false
	}
	ctLen := int(binary.BigEndian.Uint16(p[1+wire.PSPHeaderSize:]))
	off := 1 + wire.PSPHeaderSize + 2 + ctLen
	if len(p) < off+4 {
		return 0, false
	}
	return binary.BigEndian.Uint32(p[off:]), true
}

// TestPerSourceOrderingUnderReorder pins the ordering contract under an
// actively reordering substrate: whatever arrival order the network
// produces, the handler must observe exactly that order for a single
// source — the rx sharding may never reorder within a peer.
func TestPerSourceOrderingUnderReorder(t *testing.T) {
	net := netsim.NewNetwork(netsim.WithSeed(7))
	aAddr, bAddr := wire.MustAddr("fd00::a"), wire.MustAddr("fd00::b")

	var mu sync.Mutex
	var handled []uint32
	handler := func(_ pipe.Sender, src wire.Addr, hdr wire.ILPHeader, _, payload []byte) {
		seq, ok := checkPayload(payload)
		if !ok {
			t.Errorf("corrupted payload reached handler")
			return
		}
		mu.Lock()
		handled = append(handled, seq)
		mu.Unlock()
	}

	inner, err := net.Attach(bAddr)
	if err != nil {
		t.Fatal(err)
	}
	rec := newRecordingTransport(inner)
	id, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipe.New(pipe.Config{Transport: rec, Identity: id, Handler: handler})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	a := newManager(t, net, "fd00::a", nil, nil)

	// Reorder-only on a→b: no loss, no duplication, so every datagram
	// arrives exactly once and the comparison is exact.
	net.SetFaults(aAddr, bAddr, netsim.FaultProfile{
		ReorderRate:     0.3,
		ReorderDelayMin: 2 * time.Millisecond,
		ReorderDelayMax: 5 * time.Millisecond,
	})
	if err := a.Connect(bAddr); err != nil {
		t.Fatal(err)
	}

	const sends = 500
	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 1}
	for i := 0; i < sends; i++ {
		if err := a.Send(bAddr, &hdr, mkPayload(uint32(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitCond(t, 5*time.Second, "all payloads delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(handled) == sends
	})

	if st := net.Snapshot(); st.Reordered == 0 {
		t.Fatal("substrate reordered nothing; test exercised nothing")
	}
	arr := rec.arrivals()
	mu.Lock()
	defer mu.Unlock()
	if len(arr) != len(handled) {
		t.Fatalf("recorded %d arrivals, handler saw %d", len(arr), len(handled))
	}
	for i := range arr {
		if handled[i] != arr[i] {
			t.Fatalf("position %d: handler saw seq %d, substrate delivered seq %d", i, handled[i], arr[i])
		}
	}
}

// TestNoDoubleDeliveryAcrossRekey duplicates EVERY datagram while the
// sender rotates its key epoch mid-stream: each payload must still reach
// the handler exactly once (the per-epoch replay windows reject the
// copies, including copies that straddle a rotation).
func TestNoDoubleDeliveryAcrossRekey(t *testing.T) {
	net := netsim.NewNetwork(netsim.WithSeed(7))
	var mu sync.Mutex
	got := make(map[uint32]int)
	handler := func(_ pipe.Sender, src wire.Addr, hdr wire.ILPHeader, _, payload []byte) {
		seq, ok := checkPayload(payload)
		if !ok {
			t.Errorf("corrupted payload reached handler")
			return
		}
		mu.Lock()
		got[seq]++
		mu.Unlock()
	}
	a := newManager(t, net, "fd00::a", nil, nil)
	b := newManager(t, net, "fd00::b", handler, nil)
	if err := a.Connect(b.LocalAddr()); err != nil {
		t.Fatal(err)
	}
	net.SetFaults(a.LocalAddr(), b.LocalAddr(), netsim.FaultProfile{
		DuplicateRate: 1.0,
		JitterMax:     500 * time.Microsecond,
	})

	const batches, perBatch = 3, 100
	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 1}
	for bi := 0; bi < batches; bi++ {
		for i := 0; i < perBatch; i++ {
			if err := a.Send(b.LocalAddr(), &hdr, mkPayload(uint32(bi*perBatch+i))); err != nil {
				t.Fatal(err)
			}
		}
		// Let the batch (and its jittered duplicates) drain before rotating:
		// the receiver only keeps the current and previous epoch windows.
		waitCond(t, 2*time.Second, "batch drained", func() bool {
			mu.Lock()
			defer mu.Unlock()
			return len(got) == (bi+1)*perBatch
		})
		if err := a.RotateAll(); err != nil {
			t.Fatal(err)
		}
	}
	// Give straggling duplicates time to arrive (and be rejected).
	waitQuiesce(t, 2*time.Second, 200*time.Millisecond, func() int {
		st := net.Snapshot()
		return int(st.Delivered)
	})

	mu.Lock()
	defer mu.Unlock()
	if len(got) != batches*perBatch {
		t.Fatalf("delivered %d distinct payloads, want %d", len(got), batches*perBatch)
	}
	for seq, n := range got {
		if n != 1 {
			t.Fatalf("seq %d delivered %d times despite replay protection", seq, n)
		}
	}
	if st := net.Snapshot(); st.Duplicated < batches*perBatch {
		t.Fatalf("substrate duplicated only %d datagrams", st.Duplicated)
	}
}

// TestFlappingPartitionReestablishes runs a scripted flapping partition
// against a live pipe with keepalives: each flap outlasts DeadAfter, so
// dead-peer detection must tear the pipe down, and after the final heal the
// automatic re-establishment loop must bring it back and carry traffic.
func TestFlappingPartitionReestablishes(t *testing.T) {
	net := netsim.NewNetwork(netsim.WithSeed(42))
	var mu sync.Mutex
	got := make(map[uint32]int)
	handler := func(_ pipe.Sender, src wire.Addr, hdr wire.ILPHeader, _, payload []byte) {
		if seq, ok := checkPayload(payload); ok {
			mu.Lock()
			got[seq]++
			mu.Unlock()
		}
	}
	liveness := func(c *pipe.Config) {
		c.KeepaliveInterval = 20 * time.Millisecond
		c.DeadAfter = 80 * time.Millisecond
		c.Reestablish = true
		c.HandshakeRetries = 3
		c.HandshakeBackoffMax = 40 * time.Millisecond
	}
	a := newManager(t, net, "fd00::a", nil, liveness)
	b := newManager(t, net, "fd00::b", handler, liveness)
	if err := a.Connect(b.LocalAddr()); err != nil {
		t.Fatal(err)
	}

	// Two flaps of 150ms each (well past DeadAfter=80ms), ending healed.
	done, cancel := net.Schedule(netsim.FlapPartition(
		a.LocalAddr(), b.LocalAddr(), 50*time.Millisecond, 150*time.Millisecond, 2))
	defer cancel()
	<-done

	waitCond(t, 5*time.Second, "pipe re-established on both ends", func() bool {
		return a.HasPeer(b.LocalAddr()) && b.HasPeer(a.LocalAddr())
	})
	sa, sb := a.Stats(), b.Stats()
	if sa.PeersLost+sb.PeersLost == 0 {
		t.Fatal("no pipe was ever torn down; the flap did not bite")
	}
	if sa.Reestablished+sb.Reestablished == 0 {
		t.Fatal("no automatic re-establishment recorded")
	}

	// The recovered pipe must carry traffic end to end.
	hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 9}
	seq := uint32(0xF1A90000)
	waitCond(t, 5*time.Second, "post-recovery payload delivered", func() bool {
		_ = a.Send(b.LocalAddr(), &hdr, mkPayload(seq))
		time.Sleep(10 * time.Millisecond)
		mu.Lock()
		defer mu.Unlock()
		return got[seq] > 0
	})
}

// TestBatchedForwardingUnderCombinedFaults drives the coalescing egress
// through the fault injector: a floods b, b's handler forwards every packet
// to c through its worker's batching Sender, and the b→c link reorders,
// duplicates, corrupts, and jitters. The vectored fabric path must uphold
// the same invariants as per-datagram sends — faults are drawn per
// datagram, so batching may not smuggle corrupted payloads past PSP or
// deliver a sequence number twice — and the batch machinery must actually
// engage.
func TestBatchedForwardingUnderCombinedFaults(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			net := netsim.NewNetwork(netsim.WithSeed(seed))
			var mu sync.Mutex
			got := make(map[uint32]int)
			bad := 0
			sink := func(_ pipe.Sender, src wire.Addr, hdr wire.ILPHeader, _, payload []byte) {
				seq, ok := checkPayload(payload)
				mu.Lock()
				if !ok {
					bad++
				} else {
					got[seq]++
				}
				mu.Unlock()
			}
			a := newManager(t, net, "fd00::a", nil, nil)
			c := newManager(t, net, "fd00::c", sink, nil)
			var b *pipe.Manager
			fwd := func(tx pipe.Sender, src wire.Addr, hdr wire.ILPHeader, hdrRaw, payload []byte) {
				if err := tx.SendHeaderBytes(c.LocalAddr(), hdrRaw, payload); err != nil {
					t.Errorf("forward: %v", err)
				}
			}
			b = newManager(t, net, "fd00::b", fwd, func(cfg *pipe.Config) {
				cfg.TxBatch = 8
			})
			if err := a.Connect(b.LocalAddr()); err != nil {
				t.Fatal(err)
			}
			if err := b.Connect(c.LocalAddr()); err != nil {
				t.Fatal(err)
			}
			// Faults go up only after the pipes do: handshake-under-faults is
			// TestPipeIntegrityUnderCombinedFaults' job; this test aims the
			// injector at the vectored data path alone.
			net.SetFaultsBoth(b.LocalAddr(), c.LocalAddr(), netsim.FaultProfile{
				ReorderRate:     0.2,
				ReorderDelayMin: time.Millisecond,
				ReorderDelayMax: 3 * time.Millisecond,
				DuplicateRate:   0.15,
				CorruptRate:     0.15,
				JitterMax:       time.Millisecond,
			})

			const sends = 400
			hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 2}
			for i := 0; i < sends; i++ {
				if err := a.Send(b.LocalAddr(), &hdr, mkPayload(uint32(i))); err != nil {
					t.Fatal(err)
				}
			}
			delivered := waitQuiesce(t, 5*time.Second, 300*time.Millisecond, func() int {
				mu.Lock()
				defer mu.Unlock()
				return len(got)
			})

			mu.Lock()
			defer mu.Unlock()
			if bad != 0 {
				t.Fatalf("%d corrupted payloads reached the handler", bad)
			}
			for seq, n := range got {
				if n != 1 {
					t.Fatalf("seq %d delivered %d times", seq, n)
				}
			}
			if delivered < sends*6/10 {
				t.Fatalf("only %d/%d payloads delivered", delivered, sends)
			}
			bs := b.Stats()
			if bs.TxBatchedPackets == 0 || bs.TxBatches == 0 {
				t.Fatalf("forwarder never coalesced: %+v", bs)
			}
			st := net.Snapshot()
			if st.Reordered == 0 || st.Duplicated == 0 || st.Corrupted == 0 {
				t.Fatalf("fault classes did not all fire: %+v", st)
			}
			if st.Batches == 0 {
				t.Fatal("fabric saw no vectored batches")
			}
		})
	}
}
