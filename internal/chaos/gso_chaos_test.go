package chaos

import (
	"os"
	"sync"
	"testing"
	"time"

	"interedge/internal/handshake"
	"interedge/internal/netsim"
	"interedge/internal/pipe"
	"interedge/internal/wire"
)

// newUDPManager attaches a pipe manager to a real loopback UDP transport.
func newUDPManager(t *testing.T, dir *netsim.UDPDirectory, addr string, opts []netsim.UDPOption, edit func(*pipe.Config)) *pipe.Manager {
	t.Helper()
	tr, err := netsim.NewUDPTransport(wire.MustAddr(addr), "127.0.0.1:0", dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	id, err := handshake.NewIdentity()
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipe.Config{
		Transport:        tr,
		Identity:         id,
		HandshakeTimeout: 20 * time.Millisecond,
		HandshakeRetries: 20,
	}
	if edit != nil {
		edit(&cfg)
	}
	m, err := pipe.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// TestForwardingChainOverUDPGSO pushes bursts through a forwarding chain
// A -> B -> C on real loopback UDP sockets, with B's egress coalescer
// staging and batch-sealing the forwards, so on capable kernels the B -> C
// leg leaves as UDP_SEGMENT super-datagrams and arrives through UDP_GRO
// coalesced receives. The gso and fallback legs must deliver the identical
// set of packets exactly once with payload integrity intact — segmentation
// offload may change how bytes are carried, never what arrives.
func TestForwardingChainOverUDPGSO(t *testing.T) {
	const total = 400
	run := func(t *testing.T, opts []netsim.UDPOption) map[uint32]int {
		// Deep receive queues: a burst must reach the handler, not be shed
		// at the transport like a NIC under overrun — this test asserts
		// delivery semantics, not drop behavior.
		opts = append([]netsim.UDPOption{netsim.WithUDPQueueDepth(2 * total)}, opts...)
		dir := netsim.NewUDPDirectory()
		var mu sync.Mutex
		got := make(map[uint32]int)
		bad := 0
		c := newUDPManager(t, dir, "fd00::c", opts, func(cfg *pipe.Config) {
			cfg.BatchHandler = func(_ pipe.Sender, _ wire.Addr, pkts []pipe.RxPacket) {
				mu.Lock()
				for i := range pkts {
					if seq, ok := checkPayload(pkts[i].Payload); ok {
						got[seq]++
					} else {
						bad++
					}
				}
				mu.Unlock()
			}
		})
		b := newUDPManager(t, dir, "fd00::b", opts, func(cfg *pipe.Config) {
			cfg.Handler = func(tx pipe.Sender, _ wire.Addr, _ wire.ILPHeader, hdrRaw, payload []byte) {
				_ = tx.SendHeaderBytes(wire.MustAddr("fd00::c"), hdrRaw, payload)
			}
		})
		a := newUDPManager(t, dir, "fd00::a", opts, nil)
		if err := b.Connect(c.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		if err := a.Connect(b.LocalAddr()); err != nil {
			t.Fatal(err)
		}
		hdr := wire.ILPHeader{Service: wire.SvcEcho, Conn: 9}
		for seq := uint32(0); seq < total; seq++ {
			if err := a.Send(b.LocalAddr(), &hdr, mkPayload(seq)); err != nil {
				t.Fatal(err)
			}
			// Bursts of 32 with a breather: enough back-to-back arrivals for
			// B to batch (and GSO-coalesce) them, without overrunning the
			// loopback socket buffers.
			if seq%32 == 31 {
				time.Sleep(2 * time.Millisecond)
			}
		}
		waitQuiesce(t, 10*time.Second, 300*time.Millisecond, func() int {
			mu.Lock()
			defer mu.Unlock()
			return len(got)
		})
		mu.Lock()
		defer mu.Unlock()
		if bad != 0 {
			t.Fatalf("%d corrupted payloads reached the handler", bad)
		}
		out := make(map[uint32]int, len(got))
		for k, v := range got {
			out[k] = v
		}
		return out
	}
	check := func(t *testing.T, got map[uint32]int) {
		if len(got) != total {
			t.Fatalf("delivered %d distinct packets, want %d", len(got), total)
		}
		for seq, n := range got {
			if n != 1 {
				t.Fatalf("seq %d delivered %d times", seq, n)
			}
		}
	}
	t.Run("gso", func(t *testing.T) {
		if !netsim.UDPGSOSupported() || os.Getenv("INTEREDGE_NO_GSO") != "" {
			t.Skip("UDP_SEGMENT unavailable or forced off")
		}
		check(t, run(t, nil))
	})
	t.Run("fallback", func(t *testing.T) {
		check(t, run(t, []netsim.UDPOption{netsim.WithoutUDPGSO()}))
	})
}
