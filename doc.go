// Package interedge is a Go reproduction of "An Architecture For Edge
// Networking Services" (Brown et al., ACM SIGCOMM 2024): the InterEdge —
// an interconnected, neutral architecture for edge networking services.
//
// The implementation lives under internal/ and is organized by subsystem:
//
//   - internal/wire, internal/psp, internal/handshake — the ILP
//     interposition-layer protocol and its PSP-style per-packet encryption;
//   - internal/pipe — host↔SN and SN↔SN pipes, with receive processing
//     sharded across workers by source address (per-source order is
//     preserved; independent peers decrypt concurrently);
//   - internal/sn — the service node: pipe-terminus, striped decision
//     cache, and the common execution environment for service modules
//     (see DESIGN.md "Concurrent fast path" for the sharding scheme and
//     its ordering guarantee);
//   - internal/edomain, internal/lookup, internal/peering — edomains,
//     the global lookup service, and settlement-free full-mesh peering;
//   - internal/host — InterEdge host support and the extended network API;
//   - internal/services/... — the standardized service modules (pub/sub,
//     multicast, anycast, oDNS, private relay, mixnet, DDoS protection,
//     last-hop QoS, CDN caching, message queues, ordered delivery, bulk
//     delivery, VPN, ZTNA, SD-WAN, firewall, attestation, mobility);
//   - internal/broker — published rate cards, the nondiscrimination audit,
//     and coverage-stitching brokers;
//   - internal/enclave, internal/tpm — simulated secure enclaves and TPM
//     attestation;
//   - internal/tunnel — WireGuard-style tunnels for the Appendix C
//     direct-peering benchmark;
//   - internal/lab — in-process deployments (the executable Figure 1);
//   - internal/bench — the harness regenerating the paper's evaluation.
//
// The benchmarks in bench_test.go regenerate every quantitative result in
// the paper's evaluation; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-versus-measured numbers.
package interedge
